//! The semantic rules: structural properties proved over the
//! [`WorkspaceIndex`] rather than over single tokens.
//!
//! * `lock-order` — builds the lock acquisition graph (which guards are
//!   held across which calls, and which locks those calls can
//!   transitively acquire) and fails on guards held across locking
//!   calls, same-lock re-entry, and acquisition-order cycles. This is
//!   the deadlock guard for the multi-tenant service work.
//! * `determinism-taint` — flags dataflow from non-seeded sources into
//!   values that can reach answers, CIs, or exported traces: raw
//!   `Instant`/`SystemTime` (subsuming the old `timing-discipline`
//!   rule), thread ids, and iteration over `HashMap`/`HashSet` in
//!   library code unless the result is demonstrably order-insensitive
//!   or re-sorted.
//! * `widen-only-ci` — in `exec`/`stats`/`faults`, assignments to
//!   half-width-like bindings (and the half-width argument of
//!   `Ci::new`) must be provably non-narrowing: fresh computations,
//!   additions, `max`, or multiplication by a `widen` factor. Anything
//!   else (subtraction, division, `min`, unknown factors) fails unless
//!   allowlisted with a justification.
//! * `panic-reachability` — extends panic-freedom from textual matches
//!   to call-graph reachability: a library fn of a panic-free crate
//!   calling (transitively) into a function that can panic is caught
//!   even when the panic lives in another crate.

use crate::index::{LockAcq, WorkspaceIndex};
use crate::lexer::{matching_close, SpannedTok};
use crate::rules::{Finding, PANIC_FREE_CRATES};
use std::collections::{BTreeMap, BTreeSet};

/// Run every semantic rule; append findings.
pub fn check(idx: &WorkspaceIndex, out: &mut Vec<Finding>) {
    lock_order(idx, out);
    determinism_taint(idx, out);
    widen_only_ci(idx, out);
    panic_reachability(idx, out);
}

/// Pretty `crate::field` form of a lock class.
fn class_name(class: &(String, String)) -> String {
    format!("{}::{}", class.0, class.1)
}

/// `true` when the fn signature ending at body-open token `body_open`
/// declares a guard return type (`-> … *Guard* …`).
fn signature_returns_guard(toks: &[SpannedTok], body_open: usize) -> bool {
    let mut start = body_open;
    while start > 0 && !toks[start].is_ident("fn") {
        start -= 1;
    }
    for i in start..body_open.saturating_sub(1) {
        if toks[i].is_punct('-') && toks[i + 1].is_punct('>') {
            return toks[i + 2..body_open]
                .iter()
                .any(|t| t.ident().is_some_and(|id| id.contains("Guard")));
        }
    }
    false
}

// ---------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------

fn lock_order(idx: &WorkspaceIndex, out: &mut Vec<Finding>) {
    // A fn "returns a guard" when one of its acquisitions is still held
    // at the end of its body AND its signature declares a guard return
    // type (the `fn lock(&self) -> MutexGuard` helper pattern); calls
    // to it count as acquisitions at the call site. Helpers that merely
    // hold a lock internally (`with_samples(&self, f: F)`) release on
    // return — they are covered by the may-acquire analysis instead.
    let returns_guard: Vec<Option<(String, String)>> = idx
        .fns
        .iter()
        .enumerate()
        .map(|(i, item)| {
            if !signature_returns_guard(&idx.files[item.file].toks, item.body.0) {
                return None;
            }
            idx.facts[i]
                .acquires
                .iter()
                .find(|a| a.held_until >= item.body.1)
                .map(|a| a.class.clone())
        })
        .collect();

    // Transitive "may acquire" sets per fn (direct + via calls).
    let mut may_acquire: Vec<BTreeSet<(String, String)>> = idx
        .fns
        .iter()
        .enumerate()
        .map(|(i, _)| {
            idx.facts[i].acquires.iter().map(|a| a.class.clone()).collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..idx.fns.len() {
            let mut add: Vec<(String, String)> = Vec::new();
            for c in &idx.facts[i].calls {
                if let Some(g) = idx.resolve_call(idx.fns[i].file, c) {
                    for cls in &may_acquire[g] {
                        if !may_acquire[i].contains(cls) {
                            add.push(cls.clone());
                        }
                    }
                }
            }
            for cls in add {
                may_acquire[i].insert(cls);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Acquisition-order edges (for cycle detection), with one sample
    // site per edge.
    type LockClass = (String, String);
    let mut edges: BTreeMap<(LockClass, LockClass), (String, u32)> = BTreeMap::new();

    for (i, item) in idx.fns.iter().enumerate() {
        if item.in_test {
            continue;
        }
        let file = &idx.files[item.file];
        let facts = &idx.facts[i];

        // Effective acquisitions: direct ones plus guard-returning calls.
        let mut acqs: Vec<LockAcq> = Vec::new();
        for a in &facts.acquires {
            acqs.push(LockAcq {
                class: a.class.clone(),
                tok: a.tok,
                line: a.line,
                op: a.op.clone(),
                held_until: a.held_until,
            });
        }
        for c in &facts.calls {
            if let Some(g) = idx.resolve_call(item.file, c) {
                if let Some(cls) = &returns_guard[g] {
                    acqs.push(LockAcq {
                        class: cls.clone(),
                        tok: c.tok,
                        line: c.line,
                        op: c.name.clone(),
                        held_until: crate::index::held_span(&file.toks, c.tok, item.body.1),
                    });
                }
            }
        }
        acqs.sort_by_key(|a| a.tok);

        for a in &acqs {
            // Direct nesting: another acquisition inside the held span.
            for b in &acqs {
                if b.tok <= a.tok || b.tok >= a.held_until {
                    continue;
                }
                if b.class == a.class {
                    if a.op != "read" || b.op != "read" {
                        out.push(Finding {
                            file: file.rel.clone(),
                            line: b.line,
                            rule: "lock-order",
                            token: format!(
                                "{} re-acquired while held",
                                class_name(&a.class)
                            ),
                            hint: "re-entrant acquisition of the same lock deadlocks; \
                                   drop the guard (or restructure) before locking again",
                        });
                    }
                } else {
                    edges
                        .entry((a.class.clone(), b.class.clone()))
                        .or_insert_with(|| (file.rel.clone(), b.line));
                }
            }
            // Calls inside the held span that can acquire other locks.
            for c in &facts.calls {
                if c.tok <= a.tok || c.tok >= a.held_until {
                    continue;
                }
                let Some(g) = idx.resolve_call(item.file, c) else { continue };
                // The guard-returning call that produced this
                // acquisition is the acquisition itself, not a nested
                // one.
                if c.tok == a.tok {
                    continue;
                }
                for cls in &may_acquire[g] {
                    if *cls == a.class {
                        out.push(Finding {
                            file: file.rel.clone(),
                            line: c.line,
                            rule: "lock-order",
                            token: format!(
                                "{} held across `{}` which can re-acquire it",
                                class_name(&a.class),
                                c.name
                            ),
                            hint: "calling back into the lock's own owner while holding \
                                   its guard deadlocks; drop the guard first",
                        });
                    } else {
                        edges
                            .entry((a.class.clone(), cls.clone()))
                            .or_insert_with(|| (file.rel.clone(), c.line));
                        out.push(Finding {
                            file: file.rel.clone(),
                            line: c.line,
                            rule: "lock-order",
                            token: format!(
                                "{} held across `{}` which may acquire {}",
                                class_name(&a.class),
                                c.name,
                                class_name(cls)
                            ),
                            hint: "holding one lock while a callee takes another pins a \
                                   global acquisition order; drop the guard before the \
                                   call or allowlist the site with the documented order",
                        });
                    }
                }
            }
        }
    }

    // Cycles in the acquisition-order graph.
    let nodes: BTreeSet<(String, String)> = edges
        .keys()
        .flat_map(|(a, b)| [a.clone(), b.clone()])
        .collect();
    for start in &nodes {
        // A deterministic DFS from each node; report a cycle only from
        // its smallest node so each cycle is reported once.
        let mut stack = vec![(start.clone(), vec![start.clone()])];
        let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            for ((from, to), site) in &edges {
                if from != &node {
                    continue;
                }
                if to == start && path.len() > 1 {
                    if path.iter().min() == Some(start) {
                        let cycle: Vec<String> =
                            path.iter().chain([start]).map(class_name).collect();
                        out.push(Finding {
                            file: site.0.clone(),
                            line: site.1,
                            rule: "lock-order",
                            token: format!("acquisition cycle: {}", cycle.join(" -> ")),
                            hint: "two call paths take these locks in opposite orders; \
                                   establish a single global order (or merge the locks)",
                        });
                    }
                } else if !path.contains(to) && seen.insert(to.clone()) {
                    let mut p = path.clone();
                    p.push(to.clone());
                    stack.push((to.clone(), p));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// determinism-taint
// ---------------------------------------------------------------------

/// Iterator heads that expose hash ordering.
const HASH_ITER_HEADS: &[&str] =
    &["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain", "into_keys", "into_values"];

/// Chain terminals whose result is independent of iteration order.
const ORDER_INSENSITIVE: &[&str] =
    &["sum", "count", "min", "max", "all", "any", "product", "len", "fold"];

fn determinism_taint(idx: &WorkspaceIndex, out: &mut Vec<Finding>) {
    for (fi, f) in idx.files.iter().enumerate() {
        let in_obs = f.rel.starts_with("crates/obs/");
        let toks = &f.toks;
        for (i, t) in toks.iter().enumerate() {
            let Some(id) = t.ident() else { continue };
            // (a) Raw clocks, everywhere but the Clock implementation
            // itself (the old `timing-discipline` scope, unchanged).
            if matches!(id, "Instant" | "SystemTime") && !in_obs {
                out.push(Finding {
                    file: f.rel.clone(),
                    line: t.line,
                    rule: "determinism-taint",
                    token: id.into(),
                    hint: "raw std::time clocks cannot be mocked and taint anything \
                           derived from them; measure through aqp_obs::Clock instead",
                });
                continue;
            }
            if !f.is_lib || f.in_test(t.line) {
                continue;
            }
            // (b) Thread ids: `thread::current().id()` / `ThreadId`.
            if id == "ThreadId" && !in_obs {
                out.push(Finding {
                    file: f.rel.clone(),
                    line: t.line,
                    rule: "determinism-taint",
                    token: id.into(),
                    hint: "OS thread ids differ across runs; key by a deterministic \
                           worker index instead",
                });
                continue;
            }
            if id == "current"
                && toks.get(i.wrapping_sub(2)).is_some_and(|p| p.is_ident("thread"))
                && chain_has(toks, i, "id")
            {
                out.push(Finding {
                    file: f.rel.clone(),
                    line: t.line,
                    rule: "determinism-taint",
                    token: "thread::current().id()".into(),
                    hint: "OS thread ids differ across runs; key by a deterministic \
                           worker index instead",
                });
                continue;
            }
            // (c) Hash-ordered iteration in library code.
            if idx.hash_names[fi].contains(id) {
                if let Some(head) = toks.get(i + 2).and_then(|t| t.ident()) {
                    if toks[i + 1].is_punct('.')
                        && HASH_ITER_HEADS.contains(&head)
                        && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
                        && !hash_iteration_is_ordered(idx, fi, i)
                    {
                        out.push(Finding {
                            file: f.rel.clone(),
                            line: t.line,
                            rule: "determinism-taint",
                            token: format!("{id}.{head}()"),
                            hint: "HashMap/HashSet iteration order is nondeterministic and \
                                   taints anything exported from it; use BTreeMap/BTreeSet \
                                   or sort the collected result before it escapes",
                        });
                    }
                }
                // `for pat in [&[mut]] name { … }` — direct loop over
                // the collection.
                if let Some(prev) = previous_meaningful(toks, i) {
                    let direct_loop = toks.get(i + 1).is_some_and(|n| n.is_punct('{'))
                        && is_for_in_context(toks, i, prev);
                    if direct_loop {
                        out.push(Finding {
                            file: f.rel.clone(),
                            line: t.line,
                            rule: "determinism-taint",
                            token: format!("for … in {id}"),
                            hint: "HashMap/HashSet iteration order is nondeterministic and \
                                   taints anything exported from it; use BTreeMap/BTreeSet \
                                   or sort the collected result before it escapes",
                        });
                    }
                }
            }
        }
    }
}

/// Does the method chain starting at the receiver ident `i` stay
/// order-insensitive (terminal reduction, BTree collect) or get
/// re-sorted afterwards?
fn hash_iteration_is_ordered(idx: &WorkspaceIndex, fi: usize, recv: usize) -> bool {
    let toks = &idx.files[fi].toks;
    // Walk the chain: recv . m1 ( … ) . m2 ( … ) …
    let mut n = recv + 1;
    let mut last_method = String::new();
    let mut collect_open: Option<usize> = None;
    while n + 1 < toks.len() && toks[n].is_punct('.') {
        let Some(m) = toks[n + 1].ident() else { break };
        last_method = m.to_string();
        // Skip a turbofish: `collect::<BTreeMap<_, _>>`.
        let mut p = n + 2;
        let mut saw_btree = false;
        if toks.get(p).is_some_and(|t| t.is_punct(':')) {
            while p < toks.len() && !toks[p].is_punct('(') {
                if matches!(toks[p].ident(), Some("BTreeMap" | "BTreeSet" | "String")) {
                    saw_btree = true;
                }
                p += 1;
            }
        }
        if !toks.get(p).is_some_and(|t| t.is_punct('(')) {
            break;
        }
        if m == "collect" {
            if saw_btree {
                return true;
            }
            collect_open = Some(p);
        }
        match matching_close(toks, p) {
            Some(close) => n = close + 1,
            None => break,
        }
    }
    if ORDER_INSENSITIVE.contains(&last_method.as_str()) {
        return true;
    }
    // A collect whose type comes from a `let x: BTreeMap<…> = …` /
    // `let mut v = …; v.sort…()` pattern: find the let binding this
    // statement assigns and look for an ordering fact in the same fn.
    if collect_open.is_some() || !last_method.is_empty() {
        // Statement start: scan back for `let [mut] name`.
        let mut s = recv;
        let mut d = 0i32;
        while s > 0 {
            s -= 1;
            let t = &toks[s];
            if t.is_punct('}') {
                // At depth 0 a `}` going backwards is the end of a
                // preceding block statement, i.e. a statement boundary.
                if d == 0 {
                    s += 1;
                    break;
                }
                d += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                d += 1;
            } else if t.is_punct('(') || t.is_punct('{') || t.is_punct('[') {
                if d == 0 {
                    s += 1;
                    break;
                }
                d -= 1;
            } else if d == 0 && t.is_punct(';') {
                s += 1;
                break;
            }
        }
        if toks.get(s).is_some_and(|t| t.is_ident("let")) {
            let mut g = s + 1;
            if toks.get(g).is_some_and(|t| t.is_ident("mut")) {
                g += 1;
            }
            if let Some(name) = toks.get(g).and_then(|t| t.ident()) {
                // Annotated as a BTree type?
                let until_eq: Vec<&SpannedTok> = toks[g..recv]
                    .iter()
                    .take_while(|t| !t.is_punct('='))
                    .collect();
                if until_eq
                    .iter()
                    .any(|t| matches!(t.ident(), Some("BTreeMap" | "BTreeSet")))
                {
                    return true;
                }
                // Re-sorted later in the same fn?
                if let Some(owner) = idx.innermost_fn(fi, recv) {
                    let body = idx.fns[owner].body;
                    let mut k = recv;
                    while k + 2 <= body.1 {
                        if toks[k].is_ident(name)
                            && toks[k + 1].is_punct('.')
                            && toks
                                .get(k + 2)
                                .and_then(|t| t.ident())
                                .is_some_and(|m| m.starts_with("sort"))
                        {
                            return true;
                        }
                        k += 1;
                    }
                }
            }
        }
    }
    false
}

/// Does a `.m()` appear later in the chain at `i` (receiver ident)?
fn chain_has(toks: &[SpannedTok], i: usize, method: &str) -> bool {
    let mut n = i + 1;
    let mut hops = 0;
    while n + 1 < toks.len() && hops < 8 {
        if toks[n].is_punct('.') {
            if toks[n + 1].is_ident(method) {
                return true;
            }
            n += 2;
        } else if toks[n].is_punct('(') {
            match matching_close(toks, n) {
                Some(c) => n = c + 1,
                None => return false,
            }
        } else {
            return false;
        }
        hops += 1;
    }
    false
}

/// Last token before `i` (they are adjacent in the stream).
fn previous_meaningful(toks: &[SpannedTok], i: usize) -> Option<&SpannedTok> {
    if i == 0 {
        None
    } else {
        Some(&toks[i - 1])
    }
}

/// Is ident `i` the iterated expression of a `for … in` header? `prev`
/// is the preceding token; accepts `in name`, `in &name`, `in &mut
/// name`.
fn is_for_in_context(toks: &[SpannedTok], i: usize, prev: &SpannedTok) -> bool {
    let mut k = i;
    if prev.is_punct('&') {
        k = i - 1;
        if k > 0 && toks[k - 1].is_ident("mut") {
            k -= 1;
        }
    } else if prev.is_ident("mut") && k >= 2 && toks[k - 2].is_punct('&') {
        k -= 2;
    }
    k > 0 && toks[k - 1].is_ident("in")
}

// ---------------------------------------------------------------------
// widen-only-ci
// ---------------------------------------------------------------------

/// Crates whose half-width arithmetic is checked.
const WIDEN_CRATES: &[&str] = &["exec", "stats", "faults"];

/// Does an identifier name a half-width-like quantity?
fn hw_like(name: &str) -> bool {
    name.contains("half_width")
        || name.starts_with("ci_")
        || name.contains("margin")
        || name == "hw"
        || name.ends_with("_hw")
}

fn widen_only_ci(idx: &WorkspaceIndex, out: &mut Vec<Finding>) {
    for f in idx.files.iter() {
        if !f.is_lib || !WIDEN_CRATES.contains(&f.krate.as_str()) {
            continue;
        }
        let toks = &f.toks;
        for (i, t) in toks.iter().enumerate() {
            if f.in_test(t.line) {
                continue;
            }
            let Some(id) = t.ident() else { continue };
            if !hw_like(id) {
                continue;
            }
            // Compound assignment: `hw -= …`, `hw /= …` always narrow;
            // `hw *= x` narrows unless x is widen-ish.
            if let (Some(op), Some(eq)) = (toks.get(i + 1), toks.get(i + 2)) {
                if eq.is_punct('=') {
                    let bad = (op.is_punct('-') || op.is_punct('/'))
                        || (op.is_punct('*') && !widenish_operand(toks, i + 3));
                    if (op.is_punct('-') || op.is_punct('/') || op.is_punct('*')) && bad {
                        out.push(widen_finding(f, t.line, id, "compound assignment narrows"));
                        continue;
                    }
                }
            }
            // Plain assignment `id = expr;` / `let id = expr;` (`==`
            // and `=>` excluded).
            let is_assign = toks.get(i + 1).is_some_and(|n| n.is_punct('='))
                && !toks.get(i + 2).is_some_and(|n| n.is_punct('=') || n.is_punct('>'));
            if !is_assign {
                continue;
            }
            let expr = expr_range(toks, i + 2);
            if let Some(reason) = narrowing_reason(toks, expr.0, expr.1) {
                out.push(widen_finding(f, t.line, id, reason));
            }
        }
        // The half-width argument of `Ci::new(center, hw, confidence)`.
        for (i, t) in toks.iter().enumerate() {
            if f.in_test(t.line) || !t.is_ident("Ci") {
                continue;
            }
            if !(toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident("new"))
                && toks.get(i + 4).is_some_and(|t| t.is_punct('(')))
            {
                continue;
            }
            let Some(close) = matching_close(toks, i + 4) else { continue };
            // Second top-level comma-separated argument.
            let mut depth = 0i32;
            let mut arg_starts = vec![i + 5];
            for (k, tk) in toks.iter().enumerate().take(close).skip(i + 5) {
                if tk.is_punct('(') || tk.is_punct('[') || tk.is_punct('{') {
                    depth += 1;
                } else if tk.is_punct(')') || tk.is_punct(']') || tk.is_punct('}') {
                    depth -= 1;
                } else if depth == 0 && tk.is_punct(',') {
                    arg_starts.push(k + 1);
                }
            }
            if arg_starts.len() < 3 {
                continue;
            }
            let (s, e) = (arg_starts[1], arg_starts[2] - 1);
            if let Some(reason) = narrowing_reason(toks, s, e) {
                out.push(widen_finding(f, toks[i].line, "Ci::new(.., half_width, ..)", reason));
            }
        }
    }
}

fn widen_finding(f: &crate::index::FileTokens, line: u32, token: &str, reason: &str) -> Finding {
    Finding {
        file: f.rel.clone(),
        line,
        rule: "widen-only-ci",
        token: format!("{token} ({reason})"),
        hint: "half-width updates must be provably non-narrowing (fresh computation, \
               +, max, or a x>=1 widen factor); narrowing needs an allowlist entry \
               whose reason justifies it",
    }
}

/// Token range `(start, end_exclusive)` of the expression starting at
/// `start`: up to the `;`/`,` at relative depth 0 or the enclosing
/// close.
fn expr_range(toks: &[SpannedTok], start: usize) -> (usize, usize) {
    let mut depth = 0i32;
    let mut k = start;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return (start, k);
            }
        } else if depth == 0 && (t.is_punct(';') || t.is_punct(',')) {
            return (start, k);
        }
        k += 1;
    }
    (start, toks.len())
}

/// `Some(reason)` when the expression can narrow a half-width it reads.
///
/// Fresh computations (no half-width-like *value* read) pass; so do
/// additions, `max`, and multiplications by widen-ish factors.
fn narrowing_reason(toks: &[SpannedTok], s: usize, e: usize) -> Option<&'static str> {
    let reads_hw = (s..e).any(|k| {
        let Some(id) = toks[k].ident() else { return false };
        hw_like(id) && !toks.get(k + 1).is_some_and(|n| n.is_punct('('))
    });
    if !reads_hw {
        return None;
    }
    for k in s..e {
        let t = &toks[k];
        if t.is_punct('-') {
            // `->` (return types in closures) is not a subtraction.
            if toks.get(k + 1).is_some_and(|n| n.is_punct('>')) {
                continue;
            }
            return Some("subtraction can narrow");
        }
        if t.is_punct('/') {
            return Some("division can narrow");
        }
        if t.is_ident("min") && k > 0 && toks[k - 1].is_punct('.') {
            return Some("min can narrow");
        }
        if t.is_ident("clamp") && k > 0 && toks[k - 1].is_punct('.') {
            return Some("clamp can narrow");
        }
        if t.is_punct('*') {
            // Deref (`*guard`) has no left operand expression; treat a
            // `*` preceded by an operator/opening token as a deref.
            let prev_is_operand = k > 0
                && (toks[k - 1].ident().is_some()
                    || toks[k - 1].is_punct(')')
                    || toks[k - 1].num_like());
            if !prev_is_operand {
                continue;
            }
            if !widenish_operand(toks, k + 1) && !widenish_before(toks, k) {
                return Some("multiplication by an unproven factor");
            }
        }
    }
    None
}

trait NumLike {
    fn num_like(&self) -> bool;
}
impl NumLike for SpannedTok {
    fn num_like(&self) -> bool {
        self.num().is_some()
    }
}

/// Is the operand starting at `k` provably >= 1 or a widen factor?
fn widenish_operand(toks: &[SpannedTok], k: usize) -> bool {
    let Some(t) = toks.get(k) else { return false };
    if let Some(n) = t.num() {
        return num_at_least_one(n);
    }
    // An identifier chain ending in a widen-ish name: `d.widen_factor`,
    // `sum.widen_factor()`, `widen`.
    let mut j = k;
    let mut last = "";
    while let Some(id) = toks.get(j).and_then(|t| t.ident()) {
        last = id;
        if toks.get(j + 1).is_some_and(|n| n.is_punct('.')) {
            j += 2;
        } else {
            break;
        }
    }
    last.contains("widen")
}

/// Is the operand ending just before the `*` at `k` widen-ish?
fn widenish_before(toks: &[SpannedTok], k: usize) -> bool {
    if k == 0 {
        return false;
    }
    let t = &toks[k - 1];
    if let Some(n) = t.num() {
        return num_at_least_one(n);
    }
    t.ident().is_some_and(|id| id.contains("widen"))
}

/// Parse a numeric literal's text and check `>= 1`.
fn num_at_least_one(text: &str) -> bool {
    let clean: String = text
        .trim_end_matches(|c: char| c.is_ascii_alphabetic())
        .replace('_', "");
    clean.parse::<f64>().map(|v| v >= 1.0).unwrap_or(false)
}

// ---------------------------------------------------------------------
// panic-reachability
// ---------------------------------------------------------------------

/// Is `fns[i]` library code of a panic-free crate (directly covered by
/// the textual `panic-freedom` rule)?
fn in_panic_free_scope(idx: &WorkspaceIndex, i: usize) -> bool {
    let f = &idx.files[idx.fns[i].file];
    f.is_lib && PANIC_FREE_CRATES.contains(&f.krate.as_str()) && !idx.fns[i].in_test
}

fn panic_reachability(idx: &WorkspaceIndex, out: &mut Vec<Finding>) {
    // Direct panic sites per fn: panic-family macros and `.unwrap()`.
    let mut direct: Vec<bool> = vec![false; idx.fns.len()];
    for (fi, f) in idx.files.iter().enumerate() {
        let toks = &f.toks;
        for (i, t) in toks.iter().enumerate() {
            let Some(id) = t.ident() else { continue };
            let is_panic_macro = matches!(id, "panic" | "unreachable" | "todo" | "unimplemented")
                && toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
            let is_unwrap = id == "unwrap"
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && toks.get(i + 2).is_some_and(|n| n.is_punct(')'));
            if !is_panic_macro && !is_unwrap {
                continue;
            }
            if f.in_test(t.line) {
                continue;
            }
            if let Some(owner) = idx.innermost_fn(fi, i) {
                if !idx.fns[owner].in_test {
                    direct[owner] = true;
                }
            }
        }
    }

    // Transitive may-panic over resolvable calls.
    let mut may_panic = direct.clone();
    let mut why: Vec<Option<usize>> = vec![None; idx.fns.len()];
    loop {
        let mut changed = false;
        for i in 0..idx.fns.len() {
            if may_panic[i] {
                continue;
            }
            for c in &idx.facts[i].calls {
                if let Some(g) = idx.resolve_call(idx.fns[i].file, c) {
                    if may_panic[g] {
                        may_panic[i] = true;
                        why[i] = Some(g);
                        changed = true;
                        break;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    if std::env::var("AQP_ANALYZE_DEBUG").is_ok() {
        for (i, item) in idx.fns.iter().enumerate() {
            if !may_panic[i] { continue; }
            let f = &idx.files[item.file];
            let mut chain = format!("{}::{} ({}:{})", f.krate, item.name, f.rel, item.line);
            let mut cur = i;
            while let Some(g) = why[cur] {
                let gi = &idx.fns[g];
                let gf = &idx.files[gi.file];
                chain.push_str(&format!(" -> {}::{} ({}:{})", gf.krate, gi.name, gf.rel, gi.line));
                cur = g;
            }
            eprintln!("may-panic: {chain}");
        }
    }

    // Findings: a panic-free-scope fn calling a may-panic fn that is
    // *not* itself in panic-free scope (those already carry their own
    // direct findings, so reporting the caller too would double-count).
    for (i, item) in idx.fns.iter().enumerate() {
        if !in_panic_free_scope(idx, i) {
            continue;
        }
        let file = &idx.files[item.file];
        for c in &idx.facts[i].calls {
            if file.in_test(c.line) {
                continue;
            }
            let Some(g) = idx.resolve_call(item.file, c) else { continue };
            if !may_panic[g] || in_panic_free_scope(idx, g) || idx.fns[g].in_test {
                continue;
            }
            let target = &idx.fns[g];
            let tfile = &idx.files[target.file];
            out.push(Finding {
                file: file.rel.clone(),
                line: c.line,
                rule: "panic-reachability",
                token: format!(
                    "`{}` ({}:{}) can panic",
                    c.name, tfile.rel, target.line
                ),
                hint: "library code on the query path must not abort, even through \
                       helpers in other crates; make the callee return a typed error \
                       or allowlist the call with the invariant that protects it",
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::WorkspaceIndex;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources: Vec<(String, String)> =
            files.iter().map(|(r, s)| (r.to_string(), s.to_string())).collect();
        let idx = WorkspaceIndex::build(&sources);
        let mut out = Vec::new();
        check(&idx, &mut out);
        out
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn lock_order_flags_guard_held_across_locking_call() {
        let f = run(&[(
            "crates/obs/src/metrics.rs",
            "struct R { inner: Mutex<u32>, other: Mutex<u32> }\n\
             impl R {\n\
               fn second(&self) -> u32 { *self.other.lock() }\n\
               fn bad(&self) { let g = self.inner.lock(); self.second(); }\n\
             }\n",
        )]);
        assert!(
            f.iter().any(|x| x.rule == "lock-order" && x.token.contains("held across")),
            "{f:?}"
        );
    }

    #[test]
    fn lock_order_allows_sequential_acquisition() {
        let f = run(&[(
            "crates/obs/src/metrics.rs",
            "struct R { inner: Mutex<u32>, other: Mutex<u32> }\n\
             impl R {\n\
               fn ok(&self) { let a = *self.inner.lock(); let b = *self.other.lock(); }\n\
               fn ok2(&self) { self.inner.lock().do_thing(); self.other.lock().do_thing(); }\n\
             }\n",
        )]);
        assert!(rules_of(&f).iter().all(|r| *r != "lock-order"), "{f:?}");
    }

    #[test]
    fn lock_order_flags_reentry_and_cycles() {
        let f = run(&[(
            "crates/core/src/session.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
               fn reenter(&self) { let g = self.a.lock(); let h = self.a.lock(); }\n\
               fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
               fn ba(&self) { let g = self.b.lock(); let h = self.a.lock(); }\n\
             }\n",
        )]);
        assert!(f.iter().any(|x| x.token.contains("re-acquired")), "{f:?}");
        assert!(f.iter().any(|x| x.token.contains("acquisition cycle")), "{f:?}");
    }

    #[test]
    fn taint_flags_hash_iteration_and_clocks() {
        let f = run(&[(
            "crates/storage/src/catalog.rs",
            "struct I { tables: HashMap<String, u32> }\n\
             impl I {\n\
               fn names(&self) -> Vec<String> { self.tables.keys().cloned().collect() }\n\
             }\n",
        )]);
        assert!(
            f.iter().any(|x| x.rule == "determinism-taint" && x.token.contains("keys")),
            "{f:?}"
        );
        let f = run(&[("crates/exec/src/a.rs", "fn t() { let x = Instant::now(); }")]);
        assert!(f.iter().any(|x| x.rule == "determinism-taint" && x.token == "Instant"));
    }

    #[test]
    fn taint_allows_sorted_and_reduced_iteration() {
        let f = run(&[(
            "crates/storage/src/catalog.rs",
            "struct I { tables: HashMap<String, u32> }\n\
             impl I {\n\
               fn names(&self) -> Vec<String> {\n\
                 let mut v: Vec<String> = self.tables.keys().cloned().collect();\n\
                 v.sort();\n\
                 v\n\
               }\n\
               fn total(&self) -> u32 { self.tables.values().sum() }\n\
               fn count(&self) -> usize { self.tables.keys().count() }\n\
             }\n",
        )]);
        assert!(rules_of(&f).iter().all(|r| *r != "determinism-taint"), "{f:?}");
    }

    #[test]
    fn widen_only_flags_narrowing_assignments() {
        let f = run(&[(
            "crates/stats/src/ci.rs",
            "fn f(mut half_width: f64, cap: f64) -> f64 {\n\
               half_width = half_width * 0.5;\n\
               half_width\n\
             }\n",
        )]);
        assert!(rules_of(&f).contains(&"widen-only-ci"), "{f:?}");
        let f = run(&[(
            "crates/exec/src/e.rs",
            "fn g(hw: f64, cap: f64) -> f64 { let ci_half = hw.min(cap); ci_half }\n",
        )]);
        assert!(rules_of(&f).contains(&"widen-only-ci"), "{f:?}");
    }

    #[test]
    fn widen_only_allows_widening_and_fresh_values() {
        let f = run(&[(
            "crates/exec/src/e.rs",
            "fn g(c: Ci, d: Deg, draws: &[f64]) -> f64 {\n\
               let half_width = c.half_width * d.widen_factor;\n\
               let ci_hw = half_width.max(0.0);\n\
               let hw = compute_from(draws);\n\
               half_width + ci_hw + hw\n\
             }\n",
        )]);
        assert!(rules_of(&f).iter().all(|r| *r != "widen-only-ci"), "{f:?}");
    }

    #[test]
    fn panic_reachability_crosses_crates() {
        let f = run(&[
            (
                "crates/core/src/session.rs",
                "pub fn run() { helper_parse(); }\n",
            ),
            (
                "crates/sql/src/parser.rs",
                "pub fn helper_parse() { inner_parse(); }\n\
                 fn inner_parse() { panic!(\"boom\"); }\n",
            ),
        ]);
        assert!(
            f.iter().any(|x| x.rule == "panic-reachability" && x.token.contains("helper_parse")),
            "{f:?}"
        );
    }

    #[test]
    fn panic_reachability_ignores_clean_and_test_callees() {
        let f = run(&[
            ("crates/core/src/session.rs", "pub fn run() { helper_ok(); }\n"),
            (
                "crates/sql/src/parser.rs",
                "pub fn helper_ok() { let x = 1; }\n\
                 #[cfg(test)]\nmod t { fn boom() { panic!(\"x\"); } }\n",
            ),
        ]);
        assert!(rules_of(&f).iter().all(|r| *r != "panic-reachability"), "{f:?}");
    }
}

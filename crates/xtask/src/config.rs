//! The `lint.toml` allowlist: a minimal TOML-subset parser (std-only).
//!
//! Grammar actually used — `[[allow]]` table arrays with string and
//! integer values — which is all this hand parser accepts:
//!
//! ```toml
//! [[allow]]
//! rule = "panic-freedom"
//! file = "crates/exec/src/parallel.rs"
//! max = 1
//! reason = "join() of a scoped worker; a panic there is already fatal"
//! ```
//!
//! Budgets are ceilings with shrink-pressure: a (rule, file) pair may
//! produce at most `max` findings; when the actual count drops below
//! `max` the linter prints a nag to lower the budget, so the allowlist
//! can only shrink over time.

/// One allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule family the budget applies to.
    pub rule: String,
    /// Repo-relative file the budget applies to.
    pub file: String,
    /// Maximum tolerated findings for (rule, file).
    pub max: usize,
    /// Why the findings are tolerated.
    pub reason: String,
}

/// Parse the allowlist. Returns `Err(message)` on malformed input; an
/// unparseable allowlist must fail the lint run, never silence it.
pub fn parse(src: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<AllowEntry> = None;
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(e) = current.take() {
                entries.push(validated(e, lineno)?);
            }
            current = Some(AllowEntry {
                rule: String::new(),
                file: String::new(),
                max: 0,
                reason: String::new(),
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("lint.toml:{lineno}: unknown section `{line}`"));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lint.toml:{lineno}: expected `key = value`"));
        };
        let entry = current
            .as_mut()
            .ok_or_else(|| format!("lint.toml:{lineno}: key outside [[allow]]"))?;
        let key = key.trim();
        let value = value.trim();
        match key {
            "rule" => entry.rule = unquote(value, lineno)?,
            "file" => entry.file = unquote(value, lineno)?,
            "reason" => entry.reason = unquote(value, lineno)?,
            "max" => {
                entry.max = value
                    .parse()
                    .map_err(|_| format!("lint.toml:{lineno}: max must be an integer"))?
            }
            other => return Err(format!("lint.toml:{lineno}: unknown key `{other}`")),
        }
    }
    if let Some(e) = current.take() {
        entries.push(validated(e, src.lines().count())?);
    }
    Ok(entries)
}

fn validated(e: AllowEntry, lineno: usize) -> Result<AllowEntry, String> {
    if e.rule.is_empty() || e.file.is_empty() || e.max == 0 || e.reason.is_empty() {
        return Err(format!(
            "lint.toml (entry ending near line {lineno}): every [[allow]] needs \
             rule, file, max ≥ 1, and reason"
        ));
    }
    Ok(e)
}

fn strip_comment(line: &str) -> &str {
    // `#` inside quoted values does not occur in this file's vocabulary.
    line.split('#').next().unwrap_or("")
}

fn unquote(v: &str, lineno: usize) -> Result<String, String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("lint.toml:{lineno}: expected a quoted string, got `{v}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries() {
        let src = r#"
# header comment
[[allow]]
rule = "rng-discipline"
file = "crates/stats/src/rng.rs"
max = 3
reason = "sanctioned construction site"

[[allow]]
rule = "panic-freedom"  # trailing comment
file = "crates/exec/src/parallel.rs"
max = 1
reason = "scoped join"
"#;
        let e = parse(src).unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].rule, "rng-discipline");
        assert_eq!(e[0].max, 3);
        assert_eq!(e[1].file, "crates/exec/src/parallel.rs");
    }

    #[test]
    fn rejects_incomplete_entries() {
        assert!(parse("[[allow]]\nrule = \"x\"\n").is_err());
        assert!(parse("rule = \"x\"\n").is_err());
        assert!(parse("[[allow]]\nrule = \"r\"\nfile = \"f\"\nmax = 0\nreason = \"b\"").is_err());
        assert!(parse("[[allow]]\nbogus = \"x\"\n").is_err());
    }

    #[test]
    fn empty_is_empty() {
        assert_eq!(parse("# only comments\n").unwrap(), Vec::new());
    }
}

//! `xtask` — workspace invariant checking and benchmark tooling.
//!
//! Subcommands:
//!
//! * `lint` — scans every `.rs` file and crate manifest in the
//!   repository (skipping `target/`, `third_party/`, and VCS metadata)
//!   and enforces the rule families described in `src/rules.rs`, with
//!   per-(rule, file) finding budgets read from
//!   `crates/xtask/lint.toml`. Also verifies `docs/METRICS.md` is
//!   current. Exits nonzero when any unallowlisted finding remains,
//!   printing `file:line: [rule] token — hint` for each.
//! * `bench-compare` — diff two `BENCH_aqp.json` trajectory documents
//!   and fail on latency/coverage regressions beyond a threshold.
//! * `metrics-inventory` — regenerate (or `--check`) `docs/METRICS.md`
//!   from the metric constants in `aqp_obs::name`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod bench_compare;
mod config;
mod metrics_inventory;
mod rules;
mod scanner;

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use config::AllowEntry;
use rules::Finding;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "lint" => lint_cmd(rest),
            "bench-compare" => bench_compare::run(rest),
            "metrics-inventory" => metrics_inventory::run(rest),
            other => {
                eprintln!("xtask: unknown command `{other}`");
                usage()
            }
        },
        None => usage(),
    }
}

/// Parse `lint`'s flags and run it.
fn lint_cmd(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut cfg_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--config" if i + 1 < args.len() => {
                cfg_path = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            extra => {
                eprintln!("xtask: unexpected argument `{extra}`");
                return usage();
            }
        }
    }
    let root = root.unwrap_or_else(default_root);
    let cfg_path = cfg_path.unwrap_or_else(|| root.join("crates/xtask/lint.toml"));
    match lint(&root, &cfg_path) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("xtask: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- <command>");
    eprintln!("commands:");
    eprintln!("  lint [--root PATH] [--config PATH]");
    eprintln!("  bench-compare <old.json> <new.json> [--threshold FRAC] [--warn-only]");
    eprintln!("  metrics-inventory [--root PATH] [--check]");
    ExitCode::from(2)
}

/// The repo root when run via `cargo run -p xtask`.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Run the lint; `Ok(true)` means clean (exit 0).
fn lint(root: &Path, cfg_path: &Path) -> Result<bool, String> {
    let allow = match std::fs::read_to_string(cfg_path) {
        Ok(src) => config::parse(&src)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("reading {}: {e}", cfg_path.display())),
    };

    let mut sources = Vec::new();
    let mut manifests = Vec::new();
    walk(root, root, &mut sources, &mut manifests)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;
    sources.sort();
    manifests.sort();

    let mut findings: Vec<Finding> = Vec::new();
    for rel in &sources {
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("reading {rel}: {e}"))?;
        findings.extend(rules::check_source(rel, &src));
    }
    for rel in &manifests {
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("reading {rel}: {e}"))?;
        findings.extend(rules::check_manifest(rel, &src));
    }

    // docs/METRICS.md must match the metric constants the code declares.
    // Guarded on the obs source existing so synthetic fixture trees
    // (which have no observability crate) are exempt.
    if root.join(metrics_inventory::SOURCE).is_file() {
        if let Some(reason) = metrics_inventory::staleness(root) {
            findings.push(Finding {
                file: metrics_inventory::TARGET.to_string(),
                line: 1,
                rule: "metrics-docs",
                token: reason,
                hint: "regenerate with `cargo run -p xtask -- metrics-inventory`",
            });
        }
    }

    let (violations, suppressed, nags) = apply_allowlist(findings, &allow);

    for v in &violations {
        println!("{v}");
    }
    for n in &nags {
        println!("note: {n}");
    }
    if violations.is_empty() {
        println!(
            "aqp-lint: OK — {} sources + {} manifests scanned, {} finding(s) allowlisted",
            sources.len(),
            manifests.len(),
            suppressed
        );
        Ok(true)
    } else {
        println!(
            "aqp-lint: {} violation(s) across {} sources + {} manifests ({} allowlisted)",
            violations.len(),
            sources.len(),
            manifests.len(),
            suppressed
        );
        Ok(false)
    }
}

/// Split findings into (violations, suppressed-count, shrink-nags).
///
/// A budget suppresses up to `max` findings for its (rule, file) pair.
/// Over-budget pairs report *all* their findings (the allowlist must
/// shrink, never grow). Under-budget pairs and unused entries produce
/// nags so stale budgets get tightened.
fn apply_allowlist(
    findings: Vec<Finding>,
    allow: &[AllowEntry],
) -> (Vec<Finding>, usize, Vec<String>) {
    let mut counts: HashMap<(String, String), usize> = HashMap::new();
    for f in &findings {
        *counts.entry((f.rule.to_string(), f.file.clone())).or_insert(0) += 1;
    }
    let budget_of = |f: &Finding| {
        allow
            .iter()
            .find(|a| a.rule == f.rule && a.file == f.file)
            .map(|a| a.max)
    };

    let mut violations = Vec::new();
    let mut suppressed = 0usize;
    for f in findings {
        let count = counts[&(f.rule.to_string(), f.file.clone())];
        match budget_of(&f) {
            Some(max) if count <= max => suppressed += 1,
            _ => violations.push(f),
        }
    }

    let mut nags = Vec::new();
    for a in allow {
        let actual = counts.get(&(a.rule.clone(), a.file.clone())).copied().unwrap_or(0);
        if actual == 0 {
            nags.push(format!(
                "allowlist entry [{} / {}] is unused — delete it",
                a.rule, a.file
            ));
        } else if actual < a.max {
            nags.push(format!(
                "allowlist budget [{} / {}] can shrink: max = {} but only {} finding(s)",
                a.rule, a.file, a.max, actual
            ));
        } else if actual > a.max {
            nags.push(format!(
                "allowlist budget [{} / {}] exceeded: max = {} but {} finding(s) — \
                 fix the new ones; budgets only shrink",
                a.rule, a.file, a.max, actual
            ));
        }
    }
    (violations, suppressed, nags)
}

/// Directories never scanned: build output, vendored stand-ins (they
/// emulate foreign APIs, including the forbidden ones), and VCS/tooling
/// metadata.
const SKIP_DIRS: &[&str] = &["target", "third_party", ".git", ".github", ".claude"];

/// Recursively collect repo-relative `.rs` and `Cargo.toml` paths.
fn walk(
    root: &Path,
    dir: &Path,
    sources: &mut Vec<String>,
    manifests: &mut Vec<String>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, sources, manifests)?;
        } else if let Ok(rel) = path.strip_prefix(root) {
            let rel = rel.to_string_lossy().replace('\\', "/");
            if name.ends_with(".rs") {
                sources.push(rel);
            } else if name == "Cargo.toml" {
                manifests.push(rel);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str) -> Finding {
        Finding {
            file: file.into(),
            line: 1,
            rule,
            token: "tok".into(),
            hint: "hint",
        }
    }

    fn entry(rule: &str, file: &str, max: usize) -> AllowEntry {
        AllowEntry {
            rule: rule.into(),
            file: file.into(),
            max,
            reason: "test".into(),
        }
    }

    #[test]
    fn allowlist_suppresses_within_budget() {
        let allow = vec![entry("rng-discipline", "a.rs", 2)];
        let findings = vec![finding("rng-discipline", "a.rs"), finding("rng-discipline", "a.rs")];
        let (viol, supp, nags) = apply_allowlist(findings, &allow);
        assert!(viol.is_empty());
        assert_eq!(supp, 2);
        assert!(nags.is_empty(), "{nags:?}");
    }

    #[test]
    fn over_budget_reports_everything() {
        let allow = vec![entry("panic-freedom", "a.rs", 1)];
        let findings = vec![finding("panic-freedom", "a.rs"), finding("panic-freedom", "a.rs")];
        let (viol, supp, nags) = apply_allowlist(findings, &allow);
        assert_eq!(viol.len(), 2);
        assert_eq!(supp, 0);
        assert_eq!(nags.len(), 1);
        assert!(nags[0].contains("exceeded"));
    }

    #[test]
    fn under_budget_and_unused_entries_nag() {
        let allow = vec![entry("nan-safety", "a.rs", 3), entry("nan-safety", "b.rs", 1)];
        let findings = vec![finding("nan-safety", "a.rs")];
        let (viol, supp, nags) = apply_allowlist(findings, &allow);
        assert!(viol.is_empty());
        assert_eq!(supp, 1);
        assert_eq!(nags.len(), 2);
        assert!(nags.iter().any(|n| n.contains("can shrink")));
        assert!(nags.iter().any(|n| n.contains("unused")));
    }

    #[test]
    fn unallowlisted_findings_are_violations() {
        let (viol, supp, _) = apply_allowlist(vec![finding("nan-safety", "a.rs")], &[]);
        assert_eq!(viol.len(), 1);
        assert_eq!(supp, 0);
    }
}

//! `xtask` — workspace invariant checking and benchmark tooling.
//!
//! Subcommands:
//!
//! * `analyze` (alias `lint`) — lexes every `.rs` file in the
//!   repository (skipping `target/`, `third_party/`, and VCS metadata),
//!   builds the item/call/lock index, and enforces the token rules of
//!   `src/rules.rs` plus the semantic rules of `src/semrules.rs`, with
//!   per-(rule, file) finding budgets read from
//!   `crates/xtask/lint.toml`. Also verifies `docs/METRICS.md` and
//!   `docs/LINTS.md` are current. Exits nonzero when any unallowlisted
//!   finding remains, printing `file:line: [rule] token — hint` for
//!   each. `--report PATH` additionally writes a bit-stable findings
//!   JSON; `--check-budget` fails when `lint.toml` budgets grew
//!   relative to `crates/xtask/lint-budget.baseline` (refresh the
//!   baseline with `--update-budget-baseline` when budgets shrink).
//! * `corpus` — run the golden query-conformance corpus driver
//!   (`crates/conformance`): `verify` re-runs every `tests/corpus/*.case`
//!   and byte-compares the re-rendered `[expect]` body, `bless`
//!   re-records it, `drift` re-records under `target/corpus-rebless`
//!   and fails on any byte difference against the committed corpus.
//! * `bench-compare` — diff two `BENCH_aqp.json` trajectory documents
//!   and fail on latency/coverage regressions beyond a threshold.
//! * `metrics-inventory` — regenerate (or `--check`) `docs/METRICS.md`
//!   from the metric constants in `aqp_obs::name`.
//! * `lints-inventory` — regenerate (or `--check`) `docs/LINTS.md`
//!   from the rule catalog in `rules::RULES`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod bench_compare;
mod config;
mod index;
mod lexer;
mod lints_inventory;
mod metrics_inventory;
mod rules;
mod semrules;

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use config::AllowEntry;
use index::WorkspaceIndex;
use rules::Finding;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "analyze" | "lint" => analyze_cmd(rest),
            "corpus" => corpus_cmd(rest),
            "bench-compare" => bench_compare::run(rest),
            "metrics-inventory" => metrics_inventory::run(rest),
            "lints-inventory" => lints_inventory::run(rest),
            other => {
                eprintln!("xtask: unknown command `{other}`");
                usage()
            }
        },
        None => usage(),
    }
}

/// Parse `analyze`'s flags and run it.
fn analyze_cmd(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut cfg_path: Option<PathBuf> = None;
    let mut report: Option<PathBuf> = None;
    let mut check_budget = false;
    let mut update_baseline = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--config" if i + 1 < args.len() => {
                cfg_path = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--report" if i + 1 < args.len() => {
                report = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--check-budget" => {
                check_budget = true;
                i += 1;
            }
            "--update-budget-baseline" => {
                update_baseline = true;
                i += 1;
            }
            extra => {
                eprintln!("xtask: unexpected argument `{extra}`");
                return usage();
            }
        }
    }
    let root = root.unwrap_or_else(default_root);
    let cfg_path = cfg_path.unwrap_or_else(|| root.join("crates/xtask/lint.toml"));
    let baseline_path = root.join(BUDGET_BASELINE);
    if update_baseline {
        return match update_budget_baseline(&cfg_path, &baseline_path) {
            Ok(msg) => {
                println!("{msg}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("xtask: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if check_budget {
        return match budget_check(&cfg_path, &baseline_path) {
            Ok(problems) if problems.is_empty() => {
                println!("aqp-analyze: budget OK — lint.toml is within the committed baseline");
                ExitCode::SUCCESS
            }
            Ok(problems) => {
                for p in &problems {
                    println!("{p}");
                }
                println!(
                    "aqp-analyze: {} budget violation(s) — budgets only shrink; fix the \
                     findings instead of raising lint.toml",
                    problems.len()
                );
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("xtask: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match analyze(&root, &cfg_path, report.as_deref()) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("xtask: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- <command>");
    eprintln!("commands:");
    eprintln!("  analyze [--root PATH] [--config PATH] [--report PATH]");
    eprintln!("          [--check-budget] [--update-budget-baseline]   (alias: lint)");
    eprintln!("  corpus <verify|bless|drift> [--dir DIR] [--out DIR] [--report PATH]");
    eprintln!("  bench-compare <old.json> <new.json> [--threshold FRAC] [--warn-only]");
    eprintln!("  metrics-inventory [--root PATH] [--check]");
    eprintln!("  lints-inventory [--root PATH] [--check]");
    ExitCode::from(2)
}

/// Run the golden-corpus driver (`crates/conformance`). Delegated to a
/// release-mode `cargo run` so xtask itself stays a leaf crate that
/// builds without the AQP engine (keeping `cargo xtask analyze` fast).
fn corpus_cmd(args: &[String]) -> ExitCode {
    let status = std::process::Command::new(env!("CARGO"))
        .current_dir(default_root())
        .args(["run", "--release", "-q", "-p", "aqp-conformance", "--bin", "corpus", "--"])
        .args(args)
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask corpus: failed to launch cargo: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The repo root when run via `cargo run -p xtask`.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Run the analysis; `Ok(true)` means clean (exit 0).
fn analyze(root: &Path, cfg_path: &Path, report: Option<&Path>) -> Result<bool, String> {
    let allow = match std::fs::read_to_string(cfg_path) {
        Ok(src) => config::parse(&src)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("reading {}: {e}", cfg_path.display())),
    };

    let mut source_paths = Vec::new();
    let mut manifests = Vec::new();
    walk(root, root, &mut source_paths, &mut manifests)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;
    source_paths.sort();
    manifests.sort();

    let mut sources: Vec<(String, String)> = Vec::with_capacity(source_paths.len());
    for rel in &source_paths {
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("reading {rel}: {e}"))?;
        sources.push((rel.clone(), src));
    }

    let idx = WorkspaceIndex::build(&sources);
    let mut findings: Vec<Finding> = Vec::new();
    for f in &idx.files {
        findings.extend(rules::check_file(f));
    }
    semrules::check(&idx, &mut findings);
    for rel in &manifests {
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("reading {rel}: {e}"))?;
        findings.extend(rules::check_manifest(rel, &src));
    }

    // Generated docs must match what the code declares. Guarded on the
    // respective source existing so synthetic fixture trees are exempt.
    if root.join(metrics_inventory::SOURCE).is_file() {
        if let Some(reason) = metrics_inventory::staleness(root) {
            findings.push(Finding {
                file: metrics_inventory::TARGET.to_string(),
                line: 1,
                rule: "metrics-docs",
                token: reason,
                hint: "regenerate with `cargo run -p xtask -- metrics-inventory`",
            });
        }
    }
    if root.join(lints_inventory::SOURCE).is_file() {
        if let Some(reason) = lints_inventory::staleness(root) {
            findings.push(Finding {
                file: lints_inventory::TARGET.to_string(),
                line: 1,
                rule: "lints-docs",
                token: reason,
                hint: "regenerate with `cargo run -p xtask -- lints-inventory`",
            });
        }
    }

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.token.as_str())
            .cmp(&(b.file.as_str(), b.line, b.rule, b.token.as_str()))
    });
    let (violations, suppressed, nags) = apply_allowlist(findings, &allow);

    if let Some(path) = report {
        let json = render_report(&violations, &suppressed, source_paths.len(), manifests.len());
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
        std::fs::write(path, json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("aqp-analyze: wrote {}", path.display());
    }

    for v in &violations {
        println!("{v}");
    }
    for n in &nags {
        println!("note: {n}");
    }
    if violations.is_empty() {
        println!(
            "aqp-analyze: OK — {} sources + {} manifests scanned, {} finding(s) allowlisted",
            source_paths.len(),
            manifests.len(),
            suppressed.len()
        );
        Ok(true)
    } else {
        println!(
            "aqp-analyze: {} violation(s) across {} sources + {} manifests ({} allowlisted)",
            violations.len(),
            source_paths.len(),
            manifests.len(),
            suppressed.len()
        );
        Ok(false)
    }
}

/// Render the machine-readable findings document. Deterministic: the
/// findings arrive sorted and nothing time- or environment-dependent is
/// written, so two runs on the same tree are bit-identical.
fn render_report(
    violations: &[Finding],
    suppressed: &[Finding],
    sources: usize,
    manifests: usize,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"sources\": {sources},\n"));
    out.push_str(&format!("  \"manifests\": {manifests},\n"));
    out.push_str(&format!("  \"violations\": {},\n", violations.len()));
    out.push_str(&format!("  \"allowlisted\": {},\n", suppressed.len()));
    out.push_str("  \"rules\": [");
    for (i, r) in rules::RULES.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", r.name));
    }
    out.push_str("],\n");
    out.push_str("  \"findings\": [");
    let all = violations
        .iter()
        .map(|f| (f, false))
        .chain(suppressed.iter().map(|f| (f, true)));
    let mut first = true;
    for (f, allowlisted) in all {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"token\": \"{}\", \
             \"allowlisted\": {}}}",
            json_escape(&f.file),
            f.line,
            f.rule,
            json_escape(&f.token),
            allowlisted
        ));
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Escape a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Repo-relative path of the committed budget baseline.
const BUDGET_BASELINE: &str = "crates/xtask/lint-budget.baseline";

/// Compare the active allowlist against the committed baseline; returns
/// one message per grown or new budget. Removed/shrunk entries are fine
/// (budgets only shrink).
fn budget_check(cfg_path: &Path, baseline_path: &Path) -> Result<Vec<String>, String> {
    let read = |p: &Path| -> Result<Vec<AllowEntry>, String> {
        match std::fs::read_to_string(p) {
            Ok(src) => config::parse(&src),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(format!("reading {}: {e}", p.display())),
        }
    };
    let current = read(cfg_path)?;
    if !baseline_path.exists() {
        return Err(format!(
            "no budget baseline at {} — commit one with `analyze --update-budget-baseline`",
            baseline_path.display()
        ));
    }
    let baseline = read(baseline_path)?;
    let mut problems = Vec::new();
    for c in &current {
        match baseline.iter().find(|b| b.rule == c.rule && b.file == c.file) {
            None => problems.push(format!(
                "budget [{} / {}] is new (max = {}) — not in the committed baseline",
                c.rule, c.file, c.max
            )),
            Some(b) if c.max > b.max => problems.push(format!(
                "budget [{} / {}] grew: baseline max = {}, now {}",
                c.rule, c.file, b.max, c.max
            )),
            Some(_) => {}
        }
    }
    Ok(problems)
}

/// Copy the active allowlist to the committed baseline.
fn update_budget_baseline(cfg_path: &Path, baseline_path: &Path) -> Result<String, String> {
    let src = match std::fs::read_to_string(cfg_path) {
        Ok(src) => src,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(format!("reading {}: {e}", cfg_path.display())),
    };
    config::parse(&src)?; // refuse to baseline an unparseable config
    std::fs::write(baseline_path, &src)
        .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
    Ok(format!("aqp-analyze: baselined {} budgets", baseline_path.display()))
}

/// Split findings into (violations, suppressed, shrink-nags).
///
/// A budget suppresses up to `max` findings for its (rule, file) pair.
/// Over-budget pairs report *all* their findings (the allowlist must
/// shrink, never grow). Under-budget pairs and unused entries produce
/// nags so stale budgets get tightened.
fn apply_allowlist(
    findings: Vec<Finding>,
    allow: &[AllowEntry],
) -> (Vec<Finding>, Vec<Finding>, Vec<String>) {
    let mut counts: HashMap<(String, String), usize> = HashMap::new();
    for f in &findings {
        *counts.entry((f.rule.to_string(), f.file.clone())).or_insert(0) += 1;
    }
    let budget_of = |f: &Finding| {
        allow
            .iter()
            .find(|a| a.rule == f.rule && a.file == f.file)
            .map(|a| a.max)
    };

    let mut violations = Vec::new();
    let mut suppressed = Vec::new();
    for f in findings {
        let count = counts[&(f.rule.to_string(), f.file.clone())];
        match budget_of(&f) {
            Some(max) if count <= max => suppressed.push(f),
            _ => violations.push(f),
        }
    }

    let mut nags = Vec::new();
    for a in allow {
        let actual = counts.get(&(a.rule.clone(), a.file.clone())).copied().unwrap_or(0);
        if actual == 0 {
            nags.push(format!(
                "allowlist entry [{} / {}] is unused — delete it",
                a.rule, a.file
            ));
        } else if actual < a.max {
            nags.push(format!(
                "allowlist budget [{} / {}] can shrink: max = {} but only {} finding(s)",
                a.rule, a.file, a.max, actual
            ));
        } else if actual > a.max {
            nags.push(format!(
                "allowlist budget [{} / {}] exceeded: max = {} but {} finding(s) — \
                 fix the new ones; budgets only shrink",
                a.rule, a.file, a.max, actual
            ));
        }
    }
    (violations, suppressed, nags)
}

/// Directories never scanned: build output, vendored stand-ins (they
/// emulate foreign APIs, including the forbidden ones), and VCS/tooling
/// metadata. The analyzer's own fixture corpus uses the `.fix`
/// extension, so it is skipped by construction.
const SKIP_DIRS: &[&str] = &["target", "third_party", ".git", ".github", ".claude"];

/// Recursively collect repo-relative `.rs` and `Cargo.toml` paths.
fn walk(
    root: &Path,
    dir: &Path,
    sources: &mut Vec<String>,
    manifests: &mut Vec<String>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, sources, manifests)?;
        } else if let Ok(rel) = path.strip_prefix(root) {
            let rel = rel.to_string_lossy().replace('\\', "/");
            if name.ends_with(".rs") {
                sources.push(rel);
            } else if name == "Cargo.toml" {
                manifests.push(rel);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str) -> Finding {
        Finding {
            file: file.into(),
            line: 1,
            rule,
            token: "tok".into(),
            hint: "hint",
        }
    }

    fn entry(rule: &str, file: &str, max: usize) -> AllowEntry {
        AllowEntry {
            rule: rule.into(),
            file: file.into(),
            max,
            reason: "test".into(),
        }
    }

    #[test]
    fn allowlist_suppresses_within_budget() {
        let allow = vec![entry("rng-discipline", "a.rs", 2)];
        let findings = vec![finding("rng-discipline", "a.rs"), finding("rng-discipline", "a.rs")];
        let (viol, supp, nags) = apply_allowlist(findings, &allow);
        assert!(viol.is_empty());
        assert_eq!(supp.len(), 2);
        assert!(nags.is_empty(), "{nags:?}");
    }

    #[test]
    fn over_budget_reports_everything() {
        let allow = vec![entry("panic-freedom", "a.rs", 1)];
        let findings = vec![finding("panic-freedom", "a.rs"), finding("panic-freedom", "a.rs")];
        let (viol, supp, nags) = apply_allowlist(findings, &allow);
        assert_eq!(viol.len(), 2);
        assert!(supp.is_empty());
        assert_eq!(nags.len(), 1);
        assert!(nags[0].contains("exceeded"));
    }

    #[test]
    fn under_budget_and_unused_entries_nag() {
        let allow = vec![entry("nan-safety", "a.rs", 3), entry("nan-safety", "b.rs", 1)];
        let findings = vec![finding("nan-safety", "a.rs")];
        let (viol, supp, nags) = apply_allowlist(findings, &allow);
        assert!(viol.is_empty());
        assert_eq!(supp.len(), 1);
        assert_eq!(nags.len(), 2);
        assert!(nags.iter().any(|n| n.contains("can shrink")));
        assert!(nags.iter().any(|n| n.contains("unused")));
    }

    #[test]
    fn unallowlisted_findings_are_violations() {
        let (viol, supp, _) = apply_allowlist(vec![finding("nan-safety", "a.rs")], &[]);
        assert_eq!(viol.len(), 1);
        assert!(supp.is_empty());
    }

    #[test]
    fn report_json_is_deterministic_and_escaped() {
        let v = vec![finding("nan-safety", "a\"b.rs")];
        let s = vec![finding("rng-discipline", "c.rs")];
        let one = render_report(&v, &s, 10, 2);
        let two = render_report(&v, &s, 10, 2);
        assert_eq!(one, two);
        assert!(one.contains("\\\"b.rs"), "{one}");
        assert!(one.contains("\"allowlisted\": true"), "{one}");
        assert!(one.contains("\"allowlisted\": false"), "{one}");
        assert!(one.contains("\"schema\": 1"), "{one}");
        // Empty report stays valid JSON too.
        let empty = render_report(&[], &[], 0, 0);
        assert!(empty.contains("\"findings\": []"), "{empty}");
    }

    #[test]
    fn budget_check_flags_growth_and_new_entries() {
        let dir = std::env::temp_dir().join(format!("aqp-budget-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let cfg = dir.join("lint.toml");
        let base = dir.join("baseline");
        let entry = |rule: &str, file: &str, max: usize| {
            format!("[[allow]]\nrule = \"{rule}\"\nfile = \"{file}\"\nmax = {max}\nreason = \"r\"\n")
        };
        std::fs::write(&base, entry("nan-safety", "a.rs", 2)).expect("write baseline");

        // Same budget: clean. Shrunk: clean. Grown / new: flagged.
        std::fs::write(&cfg, entry("nan-safety", "a.rs", 2)).expect("write cfg");
        assert!(budget_check(&cfg, &base).expect("check").is_empty());
        std::fs::write(&cfg, entry("nan-safety", "a.rs", 1)).expect("write cfg");
        assert!(budget_check(&cfg, &base).expect("check").is_empty());
        std::fs::write(&cfg, entry("nan-safety", "a.rs", 3)).expect("write cfg");
        let p = budget_check(&cfg, &base).expect("check");
        assert_eq!(p.len(), 1);
        assert!(p[0].contains("grew"), "{p:?}");
        std::fs::write(&cfg, entry("panic-freedom", "b.rs", 1)).expect("write cfg");
        let p = budget_check(&cfg, &base).expect("check");
        assert_eq!(p.len(), 1);
        assert!(p[0].contains("new"), "{p:?}");

        // A missing baseline is an error, not a silent pass.
        let missing = dir.join("nope");
        assert!(budget_check(&cfg, &missing).is_err());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

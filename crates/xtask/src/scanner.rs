//! Comment- and string-literal-aware Rust source scanning.
//!
//! The lint rules must not fire on text inside comments, doc comments, or
//! string/char literals (a doc example mentioning `thread_rng` is not a
//! violation), so rules never look at raw source. Instead they see either
//!
//! * the [`mask`]ed source — comments and literal *contents* replaced by
//!   spaces, byte-for-byte, so line numbers and byte offsets survive — or
//! * the [`tokens`] extracted from that masked source: identifiers and
//!   single-character punctuation with line numbers attached.
//!
//! This is not a full Rust lexer; it handles exactly the constructs that
//! would otherwise cause false positives: line comments, nested block
//! comments, (raw/byte) string literals with escapes, and char literals
//! disambiguated from lifetimes.

/// One lexical token of the masked source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword, e.g. `unwrap`, `partial_cmp`, `mod`.
    Ident(String),
    /// A single punctuation character, e.g. `.`, `(`, `!`, `:`.
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based line number in the original file.
    pub line: u32,
}

impl SpannedTok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            Tok::Punct(_) => None,
        }
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

/// Replace comments and string/char literal contents with spaces,
/// preserving length and line structure exactly.
pub fn mask(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if starts_raw_string(b, i) => {
                // r"..." / r#"..."# / br#"..."# — no escapes, terminated by
                // a quote followed by the same number of hashes.
                let start = i;
                while b[i] != b'r' {
                    i += 1; // skip the 'b' of br
                }
                i += 1;
                let mut hashes = 0usize;
                while i < b.len() && b[i] == b'#' {
                    hashes += 1;
                    i += 1;
                }
                i += 1; // opening quote
                while i < b.len() {
                    if b[i] == b'"' && b[i + 1..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes {
                        i += 1 + hashes;
                        break;
                    }
                    i += 1;
                }
                for &c in &b[start..i.min(b.len())] {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                }
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                for &c in &b[start..i.min(b.len())] {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                }
            }
            b'\'' if is_char_literal(b, i) => {
                let start = i;
                i += 1;
                if i < b.len() && b[i] == b'\\' {
                    i += 2;
                } else {
                    // Possibly multi-byte UTF-8 scalar.
                    i += 1;
                    while i < b.len() && b[i] & 0xC0 == 0x80 {
                        i += 1;
                    }
                }
                if i < b.len() && b[i] == b'\'' {
                    i += 1;
                }
                let masked_len = out.len() + (i.min(b.len()) - start);
                out.resize(masked_len, b' ');
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    // Masking only writes ASCII spaces over removed bytes and copies the
    // rest verbatim, so the result is valid UTF-8 whenever the input was.
    String::from_utf8(out).expect("masking preserves UTF-8")
}

/// Does `b[i..]` begin a raw (byte) string literal?
fn starts_raw_string(b: &[u8], i: usize) -> bool {
    // Reject identifiers ending in r/b, e.g. `var"` cannot happen but
    // `for r in ...` must not treat `r` as a prefix: require the char
    // before to not be identifier-ish.
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j >= b.len() || b[j] != b'r' {
            // b"..." is an ordinary (byte) string; the `"` arm handles it.
            return false;
        }
    }
    if b[j] != b'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// Is the `'` at `b[i]` a char literal (vs a lifetime)?
fn is_char_literal(b: &[u8], i: usize) -> bool {
    if i + 1 >= b.len() {
        return false;
    }
    if b[i + 1] == b'\\' {
        return true;
    }
    // 'x' where the closing quote appears right after one scalar value.
    let mut j = i + 2;
    while j < b.len() && b[j] & 0xC0 == 0x80 {
        j += 1;
    }
    j < b.len() && b[j] == b'\''
}

/// Tokenize masked source into identifiers and punctuation with lines.
pub fn tokens(masked: &str) -> Vec<SpannedTok> {
    let b = masked.as_bytes();
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
        } else if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push(SpannedTok {
                tok: Tok::Ident(masked[start..i].to_string()),
                line,
            });
        } else if c.is_ascii_whitespace() || c.is_ascii_digit() || !c.is_ascii() {
            // Numbers and non-ASCII never matter to the rules; skip.
            i += 1;
            while i < b.len() && b[i] & 0xC0 == 0x80 {
                i += 1;
            }
        } else {
            out.push(SpannedTok { tok: Tok::Punct(c as char), line });
            i += 1;
        }
    }
    out
}

/// Byte ranges of `#[cfg(test)] mod ... { ... }` regions in masked source.
///
/// Returns (start, end) byte offsets; rules use this to exempt unit-test
/// modules from library-code-only rules. Brace matching runs on masked
/// source, so braces in strings/comments cannot unbalance it.
pub fn cfg_test_regions(masked: &str) -> Vec<(usize, usize)> {
    let b = masked.as_bytes();
    let mut regions = Vec::new();
    let mut i = 0;
    while let Some(pos) = find_cfg_test(masked, i) {
        // Find the `{` that opens the mod (skip the attribute and header).
        let mut j = pos;
        while j < b.len() && b[j] != b'{' {
            j += 1;
        }
        if j == b.len() {
            break;
        }
        let mut depth = 0usize;
        let start = pos;
        while j < b.len() {
            match b[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        regions.push((start, j.min(b.len())));
        i = j.min(b.len()).max(pos + 1);
    }
    regions
}

/// Find the next `#[cfg(test)]` attribute at or after byte `from`,
/// tolerating arbitrary whitespace between its tokens.
fn find_cfg_test(masked: &str, from: usize) -> Option<usize> {
    let b = masked.as_bytes();
    let mut i = from;
    while i < b.len() {
        if b[i] != b'#' {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 1;
        let mut ok = true;
        for expect in ["[", "cfg", "(", "test", ")", "]"] {
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if masked[j..].starts_with(expect) {
                j += expect.len();
            } else {
                ok = false;
                break;
            }
        }
        if ok {
            return Some(start);
        }
        i = start + 1;
    }
    None
}

/// Map a byte offset in (masked) source to a 1-based line number.
pub fn line_of(masked: &str, offset: usize) -> u32 {
    1 + masked.as_bytes()[..offset.min(masked.len())]
        .iter()
        .filter(|&&c| c == b'\n')
        .count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let m = mask("let x = 1; // thread_rng\n/* panic! /* nested */ */ let y = 2;");
        assert!(!m.contains("thread_rng"));
        assert!(!m.contains("panic"));
        assert!(m.contains("let x = 1;"));
        assert!(m.contains("let y = 2;"));
    }

    #[test]
    fn masks_string_contents_preserving_lines() {
        let src = "let s = \"thread_rng\\\"quoted\";\nlet t = 1;";
        let m = mask(src);
        assert!(!m.contains("thread_rng"));
        assert_eq!(m.lines().count(), src.lines().count());
        assert_eq!(m.len(), src.len());
    }

    #[test]
    fn masks_raw_strings() {
        let m = mask("let s = r#\"partial_cmp \" inner\"#; let u = unwrap_marker;");
        assert!(!m.contains("partial_cmp"));
        assert!(m.contains("unwrap_marker"));
    }

    #[test]
    fn char_literals_masked_lifetimes_kept() {
        let m = mask("fn f<'a>(x: &'a str) { let c = 'p'; let d = '\\n'; }");
        assert!(m.contains("'a"), "{m}");
        assert!(!m.contains("'p'"));
        assert!(!m.contains("\\n"));
    }

    #[test]
    fn tokens_carry_lines() {
        let toks = tokens("a.b\nc!(d)");
        let idents: Vec<(&str, u32)> = toks
            .iter()
            .filter_map(|t| t.ident().map(|s| (s, t.line)))
            .collect();
        assert_eq!(idents, vec![("a", 1), ("b", 1), ("c", 2), ("d", 2)]);
    }

    #[test]
    fn cfg_test_region_brace_matched() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { let x = { 1 }; }\n}\nfn after() {}";
        let m = mask(src);
        let regions = cfg_test_regions(&m);
        assert_eq!(regions.len(), 1);
        let (s, e) = regions[0];
        assert!(m[s..e].contains("fn t"));
        assert!(!m[s..e].contains("after"));
        assert!(line_of(&m, s) == 2);
    }
}

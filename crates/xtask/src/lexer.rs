//! A std-only Rust lexer for the `analyze` rules.
//!
//! The rules must never fire on text inside comments or literals (a doc
//! example mentioning `thread_rng` is not a violation), and several of
//! the semantic rules need to see literal *values* (metric names, widen
//! factors). So instead of the old masked-source line scanner this
//! module produces a typed token stream:
//!
//! * [`Tok::Ident`] — identifiers and keywords;
//! * [`Tok::Punct`] — single punctuation characters;
//! * [`Tok::Str`] — any string literal (`"…"`, `r"…"`, `r#"…"#`,
//!   `b"…"`, `br#"…"#`, `c"…"`) with its cooked content, however many
//!   lines it spans;
//! * [`Tok::Num`] — numeric literals with their source text;
//! * [`Tok::Lifetime`] — `'a` and friends, disambiguated from char
//!   literals;
//! * [`Tok::Char`] — char literals (content never matters to a rule).
//!
//! Comments (line, doc, and nested block) are dropped entirely. Every
//! token carries the 1-based line it starts on, so findings keep
//! clickable `file:line` coordinates.
//!
//! This is not a full Rust lexer; it covers exactly the constructs that
//! would otherwise cause false positives or negatives, including the
//! three historic blind spots of the retired line scanner: raw strings,
//! multi-line string literals, and `//` sequences *inside* string
//! literals (which must not swallow the rest of the line).

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// An identifier or keyword, e.g. `unwrap`, `fn`, `half_width`.
    Ident(String),
    /// A single punctuation character, e.g. `.`, `(`, `!`, `*`.
    Punct(char),
    /// A string literal's cooked content (escapes left as-is; the rules
    /// only ever compare plain-ASCII names).
    Str(String),
    /// A numeric literal's source text, e.g. `1.0`, `0x7F`, `2u64`.
    Num(String),
    /// A lifetime, e.g. `'a` (without the quote).
    Lifetime(String),
    /// A char literal; its content never matters to any rule.
    Char,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based line number in the original file.
    pub line: u32,
}

impl SpannedTok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The string-literal content, if this token is one.
    pub fn str_lit(&self) -> Option<&str> {
        match &self.tok {
            Tok::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The numeric-literal text, if this token is one.
    pub fn num(&self) -> Option<&str> {
        match &self.tok {
            Tok::Num(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    /// Whether this token is the identifier `id`.
    pub fn is_ident(&self, id: &str) -> bool {
        self.ident() == Some(id)
    }
}

/// Tokenize Rust source. Never panics on malformed input: an unclosed
/// literal or comment simply ends at end-of-file.
pub fn lex(src: &str) -> Vec<SpannedTok> {
    Lexer { b: src.as_bytes(), src, i: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer<'a> {
    b: &'a [u8],
    src: &'a str,
    i: usize,
    line: u32,
    out: Vec<SpannedTok>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<SpannedTok> {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' | b'c' if self.starts_raw_string() => self.raw_string(),
                b'b' | b'c' if self.peek(1) == Some(b'"') => {
                    self.i += 1; // the prefix; the quote arm does the rest
                    self.cooked_string();
                }
                b'"' => self.cooked_string(),
                b'\'' => self.quote(),
                _ if c.is_ascii_alphabetic() || c == b'_' => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ if c.is_ascii_whitespace() => self.i += 1,
                _ if !c.is_ascii() => {
                    // Skip a non-ASCII scalar; none of the rules care.
                    self.i += 1;
                    while self.i < self.b.len() && self.b[self.i] & 0xC0 == 0x80 {
                        self.i += 1;
                    }
                }
                _ => {
                    self.out.push(SpannedTok { tok: Tok::Punct(c as char), line: self.line });
                    self.i += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn line_comment(&mut self) {
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
    }

    fn block_comment(&mut self) {
        let mut depth = 0usize;
        while self.i < self.b.len() {
            if self.b[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.i += 2;
            } else if self.b[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.i += 2;
                if depth == 0 {
                    return;
                }
            } else {
                if self.b[self.i] == b'\n' {
                    self.line += 1;
                }
                self.i += 1;
            }
        }
    }

    /// Does `b[i..]` begin a raw (byte/C) string literal? Requires the
    /// previous byte to not be identifier-ish, so `for r in xs` is safe.
    fn starts_raw_string(&self) -> bool {
        if self.i > 0 {
            let p = self.b[self.i - 1];
            if p.is_ascii_alphanumeric() || p == b'_' {
                return false;
            }
        }
        let mut j = self.i;
        // Optional b/c prefix before the r.
        if self.b[j] == b'b' || self.b[j] == b'c' {
            j += 1;
        }
        if j >= self.b.len() || self.b[j] != b'r' {
            return false;
        }
        j += 1;
        while j < self.b.len() && self.b[j] == b'#' {
            j += 1;
        }
        j < self.b.len() && self.b[j] == b'"'
    }

    /// `r"…"` / `r#"…"#` / `br##"…"##`: no escapes; terminated by a
    /// quote followed by the same number of hashes.
    fn raw_string(&mut self) {
        let start_line = self.line;
        while self.b[self.i] != b'r' {
            self.i += 1; // skip the b/c prefix
        }
        self.i += 1;
        let mut hashes = 0usize;
        while self.i < self.b.len() && self.b[self.i] == b'#' {
            hashes += 1;
            self.i += 1;
        }
        self.i += 1; // opening quote
        let content_start = self.i;
        let mut content_end = self.b.len();
        while self.i < self.b.len() {
            if self.b[self.i] == b'"'
                && self.b[self.i + 1..].iter().take_while(|&&c| c == b'#').count() >= hashes
            {
                content_end = self.i;
                self.i += 1 + hashes;
                break;
            }
            if self.b[self.i] == b'\n' {
                self.line += 1;
            }
            self.i += 1;
        }
        let content = self.src[content_start..content_end].to_string();
        self.out.push(SpannedTok { tok: Tok::Str(content), line: start_line });
    }

    /// `"…"` with escapes; may span lines.
    fn cooked_string(&mut self) {
        let start_line = self.line;
        let content_start = self.i + 1;
        self.i += 1;
        let mut content_end = self.b.len();
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'"' => {
                    content_end = self.i;
                    self.i += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        let content = self.src[content_start..content_end.min(self.b.len())].to_string();
        self.out.push(SpannedTok { tok: Tok::Str(content), line: start_line });
    }

    /// A `'`: either a char literal or a lifetime.
    fn quote(&mut self) {
        // Escaped char literal: '\n', '\'', '\u{..}'.
        if self.peek(1) == Some(b'\\') {
            self.i += 2;
            while self.i < self.b.len() && self.b[self.i] != b'\'' {
                self.i += 1;
            }
            self.i += 1; // closing quote
            self.out.push(SpannedTok { tok: Tok::Char, line: self.line });
            return;
        }
        // 'x' (one scalar then a quote) is a char literal; anything else
        // identifier-ish is a lifetime.
        let mut j = self.i + 1;
        if j < self.b.len() {
            // Width of one UTF-8 scalar.
            j += 1;
            while j < self.b.len() && self.b[j] & 0xC0 == 0x80 {
                j += 1;
            }
        }
        if j < self.b.len() && self.b[j] == b'\'' {
            self.i = j + 1;
            self.out.push(SpannedTok { tok: Tok::Char, line: self.line });
            return;
        }
        // Lifetime: consume the identifier after the quote.
        let start = self.i + 1;
        self.i += 1;
        while self.i < self.b.len()
            && (self.b[self.i].is_ascii_alphanumeric() || self.b[self.i] == b'_')
        {
            self.i += 1;
        }
        let name = self.src[start..self.i].to_string();
        self.out.push(SpannedTok { tok: Tok::Lifetime(name), line: self.line });
    }

    fn ident(&mut self) {
        let start = self.i;
        while self.i < self.b.len()
            && (self.b[self.i].is_ascii_alphanumeric() || self.b[self.i] == b'_')
        {
            self.i += 1;
        }
        let text = self.src[start..self.i].to_string();
        self.out.push(SpannedTok { tok: Tok::Ident(text), line: self.line });
    }

    /// Numbers: digits, `_`, type suffixes, hex/octal/binary, a single
    /// decimal point when followed by a digit (so `0..3` stays two
    /// range dots), and exponents with an optional sign.
    fn number(&mut self) {
        let start = self.i;
        while self.i < self.b.len() {
            let c = self.b[self.i];
            if c.is_ascii_alphanumeric() || c == b'_' {
                // An exponent may carry a sign: 1e-5, 2.5E+3.
                if (c == b'e' || c == b'E')
                    && !self.src[start..self.i].starts_with("0x")
                    && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                    && self.peek(2).is_some_and(|d| d.is_ascii_digit())
                {
                    self.i += 2;
                    continue;
                }
                self.i += 1;
            } else if c == b'.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !self.src[start..self.i].contains('.')
            {
                self.i += 1;
            } else {
                break;
            }
        }
        let text = self.src[start..self.i].to_string();
        self.out.push(SpannedTok { tok: Tok::Num(text), line: self.line });
    }
}

/// 1-based inclusive line ranges of `#[cfg(test)]`-gated items (their
/// attribute through their closing brace). Rules use this to exempt
/// unit-test modules from library-code-only rules. Matching runs on the
/// token stream, so braces inside strings or comments cannot unbalance
/// it.
pub fn cfg_test_line_ranges(toks: &[SpannedTok]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_attr = toks[i].is_punct('#')
            && toks[i + 1].is_punct('[')
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct('(')
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(')')
            && toks[i + 6].is_punct(']');
        if !is_attr {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        // Find the `{` opening the gated item and its matching `}`.
        let mut j = i + 7;
        while j < toks.len() && !toks[j].is_punct('{') {
            // A `;` before any `{` means the attribute gates a braceless
            // item (e.g. `#[cfg(test)] use …;`): exempt just that item.
            if toks[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        let mut end_line = toks.get(j).map(|t| t.line).unwrap_or(start_line);
        if j < toks.len() && toks[j].is_punct('{') {
            let mut depth = 0usize;
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            end_line = toks.get(j).map(|t| t.line).unwrap_or(end_line);
        }
        out.push((start_line, end_line));
        i = j.max(i + 7);
    }
    out
}

/// Index of the `)` matching the `(` expected at `toks[open]`; `None`
/// if `toks[open]` is not `(` or the parens never balance.
pub fn matching_close(toks: &[SpannedTok], open: usize) -> Option<usize> {
    if open >= toks.len() || !toks[open].is_punct('(') {
        return None;
    }
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).iter().filter_map(|t| t.ident().map(str::to_string)).collect()
    }

    #[test]
    fn drops_line_and_nested_block_comments() {
        let ids = idents("let x = 1; // thread_rng\n/* panic! /* nested */ */ let y = 2;");
        assert_eq!(ids, vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn string_contents_become_str_tokens() {
        let toks = lex("let s = \"thread_rng\";");
        assert!(toks.iter().all(|t| t.ident() != Some("thread_rng")));
        assert!(toks.iter().any(|t| t.str_lit() == Some("thread_rng")));
    }

    // Regression: the old scanner's first blind spot — raw strings.
    #[test]
    fn raw_strings_lex_as_literals() {
        let toks = lex("let s = r#\"partial_cmp \" inner\"#; let u = unwrap_marker;");
        assert!(toks.iter().all(|t| t.ident() != Some("partial_cmp")));
        assert_eq!(
            toks.iter().find_map(|t| t.str_lit()),
            Some("partial_cmp \" inner")
        );
        assert!(toks.iter().any(|t| t.is_ident("unwrap_marker")));
        // Higher hash counts and byte/C prefixes too.
        let toks = lex("br##\"one \"# two\"##; cr\"three\"; b\"four\"; c\"five\"");
        let lits: Vec<&str> = toks.iter().filter_map(|t| t.str_lit()).collect();
        assert_eq!(lits, vec!["one \"# two", "three", "four", "five"]);
    }

    // Regression: blind spot two — multi-line string literals.
    #[test]
    fn multi_line_strings_keep_line_numbers() {
        let src = "let s = \"line one\nInstant::now()\nline three\";\nlet after = Instant;";
        let toks = lex(src);
        // The literal is one token on line 1; the mention of Instant
        // inside it never becomes an identifier.
        let instants: Vec<u32> =
            toks.iter().filter(|t| t.is_ident("Instant")).map(|t| t.line).collect();
        assert_eq!(instants, vec![4], "{toks:?}");
        // A raw multi-line string behaves the same.
        let toks = lex("let s = r\"a\nb\nc\";\nlet z = SystemTime;");
        let st: Vec<u32> =
            toks.iter().filter(|t| t.is_ident("SystemTime")).map(|t| t.line).collect();
        assert_eq!(st, vec![4]);
    }

    // Regression: blind spot three — `//` inside a string literal must
    // not swallow the rest of the line.
    #[test]
    fn slashes_inside_strings_do_not_start_comments() {
        let toks = lex("let url = \"https://example.com\"; let r = thread_rng();");
        assert!(toks.iter().any(|t| t.is_ident("thread_rng")), "{toks:?}");
        assert!(toks.iter().any(|t| t.str_lit() == Some("https://example.com")));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'p'; let d = '\\n'; }");
        assert_eq!(toks.iter().filter(|t| t.tok == Tok::Char).count(), 2);
        assert!(toks.iter().any(|t| t.tok == Tok::Lifetime("a".into())));
        assert!(!toks.iter().any(|t| t.is_ident("p")));
    }

    #[test]
    fn numbers_lex_with_suffixes_and_ranges() {
        let toks = lex("let a = 1.5; let b = 0x7F; for i in 0..3 {} let c = 1e-5; let d = 2u64;");
        let nums: Vec<&str> = toks.iter().filter_map(|t| t.num()).collect();
        assert_eq!(nums, vec!["1.5", "0x7F", "0", "3", "1e-5", "2u64"]);
    }

    #[test]
    fn tokens_carry_lines() {
        let toks = lex("a.b\nc!(d)");
        let got: Vec<(&str, u32)> =
            toks.iter().filter_map(|t| t.ident().map(|s| (s, t.line))).collect();
        assert_eq!(got, vec![("a", 1), ("b", 1), ("c", 2), ("d", 2)]);
    }

    #[test]
    fn cfg_test_ranges_are_brace_matched() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { let x = { 1 }; }\n}\nfn after() {}";
        let toks = lex(src);
        let ranges = cfg_test_line_ranges(&toks);
        assert_eq!(ranges, vec![(2, 5)]);
        // A string containing `#[cfg(test)]` does not open a region.
        let toks = lex("let s = \"#[cfg(test)] mod x {\"; fn real() {}");
        assert!(cfg_test_line_ranges(&toks).is_empty());
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        for src in ["\"unterminated", "r#\"raw", "/* open", "'x", "1.", "b\""] {
            let _ = lex(src);
        }
    }
}

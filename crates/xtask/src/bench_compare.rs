//! `xtask bench-compare` — diff two benchmark-trajectory documents
//! (`BENCH_aqp.json`, written by `cargo run -p aqp-bench --bin
//! bench_trajectory`) and flag regressions beyond a threshold.
//!
//! A metric's name encodes which direction is "worse": latencies and
//! required-sample-size metrics regress *upward*, speedups and coverage
//! regress *downward*, and plain counters (operator counts, scored
//! audits, worker counts) are direction-neutral — drift beyond the
//! threshold is reported but never fails the run. Exits nonzero on any
//! directional regression unless `--warn-only` is given.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Which movement of a metric counts as a regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Larger values are worse (latencies, required sample rows).
    HigherWorse,
    /// Smaller values are worse (speedups, coverage percentages).
    LowerWorse,
    /// No regression direction (structural counters); drift only warns.
    Neutral,
}

fn direction(name: &str) -> Direction {
    if name.contains("per_sec") || name.contains("per_s") || name.contains("throughput") {
        // Throughput regresses downward; checked before the `_s` suffix
        // rule so `rows_per_sec`/`rows_per_s`-style names never read as
        // latencies.
        Direction::LowerWorse
    } else if name.ends_with("_s")
        || name.ends_with("_ms")
        || name.contains("mean_rows")
        || name.contains("alerts")
        || name.contains("drift")
        || name.contains("overhead")
    {
        // On the fixed miscalibrated SLO leg, *more* alerts or drift
        // signals than the stamped baseline means detection got noisier.
        Direction::HigherWorse
    } else if name.contains("speedup") || name.contains("coverage") || name.contains("budget") {
        // Remaining error budget regresses downward, like coverage.
        Direction::LowerWorse
    } else {
        Direction::Neutral
    }
}

/// Entry point for the `bench-compare` subcommand.
pub fn run(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold = 0.2f64;
    let mut warn_only = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" if i + 1 < args.len() => {
                match args[i + 1].parse::<f64>() {
                    Ok(t) if t > 0.0 => threshold = t,
                    _ => {
                        eprintln!("xtask bench-compare: --threshold wants a positive fraction");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--warn-only" => {
                warn_only = true;
                i += 1;
            }
            flag if flag.starts_with('-') => {
                eprintln!("xtask bench-compare: unknown flag `{flag}`");
                return ExitCode::from(2);
            }
            _ => {
                paths.push(&args[i]);
                i += 1;
            }
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!(
            "usage: cargo run -p xtask -- bench-compare <old.json> <new.json> \
             [--threshold FRAC] [--warn-only]"
        );
        return ExitCode::from(2);
    };

    let old = match load(old_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("xtask bench-compare: {old_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let new = match load(new_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("xtask bench-compare: {new_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let report = compare(&old, &new, threshold);
    for line in &report.lines {
        println!("{line}");
    }
    println!(
        "bench-compare: {} metric(s) compared, {} regression(s), {} drift warning(s) \
         (threshold {:.0}%)",
        report.compared,
        report.regressions,
        report.warnings,
        threshold * 100.0
    );
    if report.regressions > 0 && !warn_only {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The outcome of a comparison, pre-rendered for printing.
struct Report {
    lines: Vec<String>,
    compared: usize,
    regressions: usize,
    warnings: usize,
}

/// Compare two metric maps under `threshold` (a relative fraction).
fn compare(old: &BTreeMap<String, f64>, new: &BTreeMap<String, f64>, threshold: f64) -> Report {
    let mut report = Report { lines: Vec::new(), compared: 0, regressions: 0, warnings: 0 };
    for (name, &was) in old {
        let Some(&now) = new.get(name) else {
            report.warnings += 1;
            report.lines.push(format!("WARN  {name}: missing from the new trajectory"));
            continue;
        };
        report.compared += 1;
        let denom = was.abs().max(f64::MIN_POSITIVE);
        let change = (now - was) / denom;
        let regressed = match direction(name) {
            Direction::HigherWorse => change > threshold,
            Direction::LowerWorse => -change > threshold,
            Direction::Neutral => false,
        };
        if regressed {
            report.regressions += 1;
            report.lines.push(format!(
                "FAIL  {name}: {was} -> {now} ({:+.1}%)",
                change * 100.0
            ));
        } else if change.abs() > threshold {
            report.warnings += 1;
            report.lines.push(format!(
                "WARN  {name}: {was} -> {now} ({:+.1}%) — large but non-regressive drift",
                change * 100.0
            ));
        }
    }
    for name in new.keys() {
        if !old.contains_key(name) {
            report.lines.push(format!("NOTE  {name}: new metric (no baseline)"));
        }
    }
    report
}

fn load(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let src = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse_metrics(&src)
}

/// Extract the flat `"metrics"` object of a trajectory document. The
/// format is the canonical output of `bench_trajectory` — string keys
/// mapped to plain JSON numbers, no nesting — so a split-based parse is
/// exact, not approximate.
fn parse_metrics(src: &str) -> Result<BTreeMap<String, f64>, String> {
    let at = src.find("\"metrics\"").ok_or("no \"metrics\" object")?;
    let rest = &src[at..];
    let open = rest.find('{').ok_or("malformed \"metrics\" object")?;
    let body = &rest[open + 1..];
    let close = body.find('}').ok_or("unterminated \"metrics\" object")?;
    let mut map = BTreeMap::new();
    for pair in body[..close].split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair.split_once(':').ok_or_else(|| format!("bad entry `{pair}`"))?;
        let key = k.trim().trim_matches('"').to_string();
        let value: f64 =
            v.trim().parse().map_err(|_| format!("non-numeric value in `{pair}`"))?;
        map.insert(key, value);
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(entries: &[(&str, f64)]) -> BTreeMap<String, f64> {
        entries.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn parses_the_canonical_document() {
        let doc = "{\n  \"schema\": \"aqp-bench-trajectory/v1\",\n  \"seed\": 1,\n  \
                   \"metrics\": {\n    \"fig7.qset1.p50_s\": 19.5,\n    \"profile.ops\": 6\n  }\n}\n";
        let m = parse_metrics(doc).expect("parse");
        assert_eq!(m.len(), 2);
        assert_eq!(m["fig7.qset1.p50_s"], 19.5);
        assert_eq!(m["profile.ops"], 6.0);
    }

    #[test]
    fn latency_regression_fails_speedup_gain_does_not() {
        let old = metrics(&[("fig7.qset1.p50_s", 10.0), ("fig8.qset1.speedup_p50", 3.0)]);
        let new = metrics(&[("fig7.qset1.p50_s", 12.5), ("fig8.qset1.speedup_p50", 4.0)]);
        let r = compare(&old, &new, 0.2);
        assert_eq!(r.regressions, 1);
        assert!(r.lines.iter().any(|l| l.starts_with("FAIL") && l.contains("p50_s")));
    }

    #[test]
    fn speedup_and_coverage_regress_downward() {
        let old = metrics(&[("fig8.qset2.speedup_p50", 30.0), ("audit.coverage_pct", 96.0)]);
        let new = metrics(&[("fig8.qset2.speedup_p50", 20.0), ("audit.coverage_pct", 70.0)]);
        let r = compare(&old, &new, 0.2);
        assert_eq!(r.regressions, 2);
    }

    #[test]
    fn throughput_regresses_downward_despite_the_s_suffix() {
        // `..._per_sec` ends with `_s` lexically but is a throughput:
        // dropping is a regression, rising is fine.
        let old = metrics(&[("profile.scan_rows_per_sec", 1e6), ("contprof.throughput", 5.0)]);
        let new = metrics(&[("profile.scan_rows_per_sec", 2e6), ("contprof.throughput", 2.0)]);
        let r = compare(&old, &new, 0.2);
        assert_eq!(r.regressions, 1);
        assert!(r.lines.iter().any(|l| l.starts_with("FAIL") && l.contains("throughput")));
    }

    #[test]
    fn ingest_rate_and_overhead_have_directions() {
        // `..._per_s` is a throughput (regresses downward) even though
        // it ends with `_s`; `overhead_pct` regresses upward.
        let old =
            metrics(&[("introspect.ingest_rows_per_s", 1e5), ("introspect.overhead_pct", 1.0)]);
        let new =
            metrics(&[("introspect.ingest_rows_per_s", 5e4), ("introspect.overhead_pct", 2.0)]);
        let r = compare(&old, &new, 0.2);
        assert_eq!(r.regressions, 2);
    }

    #[test]
    fn neutral_counters_only_warn() {
        let old = metrics(&[("profile.ops", 6.0)]);
        let new = metrics(&[("profile.ops", 12.0)]);
        let r = compare(&old, &new, 0.2);
        assert_eq!(r.regressions, 0);
        assert_eq!(r.warnings, 1);
    }

    #[test]
    fn small_moves_are_silent() {
        let old = metrics(&[("fig9.qset1.p95_s", 3.7)]);
        let new = metrics(&[("fig9.qset1.p95_s", 3.9)]);
        let r = compare(&old, &new, 0.2);
        assert_eq!(r.regressions + r.warnings, 0);
        assert!(r.lines.is_empty());
    }

    #[test]
    fn missing_metrics_warn() {
        let old = metrics(&[("fig7.qset1.p50_s", 10.0), ("gone.p50_s", 1.0)]);
        let new = metrics(&[("fig7.qset1.p50_s", 10.0), ("added.p50_s", 1.0)]);
        let r = compare(&old, &new, 0.2);
        assert_eq!(r.warnings, 1);
        assert!(r.lines.iter().any(|l| l.contains("new metric")));
    }
}

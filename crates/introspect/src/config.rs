//! Configuration of the introspection pipeline.

use aqp_obs::router::ClassRouter;

/// Knobs of the introspection pipeline. `Default` is a sensible
/// always-on shape: 4096-row reservoirs per table, a metrics snapshot
/// every 16th query, half-rate uniform samples over the materialized
/// tables, and the recursion guard engaged.
#[derive(Debug, Clone)]
pub struct IntrospectConfig {
    /// Root seed of every per-table reservoir and of the uniform
    /// samples built over the materialized tables. Retention is a pure
    /// function of (seed, event sequence).
    pub seed: u64,
    /// Row budget of each `_telemetry.*` reservoir; beyond it, seeded
    /// reservoir downsampling keeps a uniform subset.
    pub budget_rows: usize,
    /// Fold a point-in-time metrics snapshot into `_telemetry.metrics`
    /// every Nth folded query (`0` disables the snapshot stream —
    /// snapshots are the most voluminous source).
    pub metrics_every: u64,
    /// Fraction of a materialized table to cover with the uniform
    /// sample the approximate path runs on.
    pub sample_fraction: f64,
    /// Tables smaller than this are registered without samples, so
    /// queries over them silently run exact (sampling 20 rows buys
    /// nothing).
    pub min_rows_for_sampling: usize,
    /// Partition count of materialized tables and their samples.
    pub partitions: usize,
    /// Fold telemetry *from introspection queries themselves* back into
    /// the tables. Off by default: a dashboard refresh should not
    /// perturb the data it displays.
    pub allow_recursive: bool,
    /// Workload-class routing for telemetry rows — the same shared
    /// [`ClassRouter`] the SLO engine and continuous profiler use, so
    /// all three slice the fleet identically.
    pub classes: ClassRouter,
}

impl Default for IntrospectConfig {
    fn default() -> Self {
        IntrospectConfig {
            seed: 0,
            budget_rows: 4096,
            metrics_every: 16,
            sample_fraction: 0.5,
            min_rows_for_sampling: 64,
            partitions: 2,
            allow_recursive: false,
            classes: ClassRouter::new(),
        }
    }
}

impl IntrospectConfig {
    /// The default shape (see the struct docs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the reservoir/sample seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the per-table row budget (at least 1).
    pub fn with_budget_rows(mut self, budget: usize) -> Self {
        self.budget_rows = budget.max(1);
        self
    }

    /// Snapshot the metrics registry every `n`th folded query (`0`
    /// disables `_telemetry.metrics`).
    pub fn with_metrics_every(mut self, n: u64) -> Self {
        self.metrics_every = n;
        self
    }

    /// Route telemetry rows of queries whose SQL contains
    /// `sql_contains` to `class` (first matching rule wins).
    pub fn with_class(mut self, class: &str, sql_contains: &str) -> Self {
        self.classes.push_rule(class, sql_contains);
        self
    }

    /// Allow introspection queries to fold their own telemetry back
    /// into the `_telemetry.*` tables.
    pub fn with_recursive(mut self, allow: bool) -> Self {
        self.allow_recursive = allow;
        self
    }

    /// Set the uniform-sample fraction over materialized tables
    /// (clamped to `(0, 1]`).
    pub fn with_sample_fraction(mut self, fraction: f64) -> Self {
        self.sample_fraction = if fraction.is_finite() {
            fraction.clamp(1e-3, 1.0)
        } else {
            0.5
        };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_clamp_degenerate_values() {
        let c = IntrospectConfig::new()
            .with_budget_rows(0)
            .with_sample_fraction(f64::NAN);
        assert_eq!(c.budget_rows, 1);
        assert!((c.sample_fraction - 0.5).abs() < 1e-12);
        let c = IntrospectConfig::new().with_sample_fraction(7.0);
        assert!((c.sample_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn default_guard_is_engaged() {
        assert!(!IntrospectConfig::default().allow_recursive);
        assert_eq!(IntrospectConfig::default().budget_rows, 4096);
    }
}

//! The `_telemetry.*` table set: schemas, the dynamically typed row
//! cell, and materialization into `aqp-storage` columns.
//!
//! Every table lives under the reserved [`NAMESPACE`] so user tables
//! can never collide with telemetry, and the session can recognize
//! introspection queries syntactically (the recursion guard). Nullable
//! columns use the storage layer's null bitmaps; because
//! `Column::to_f64_vec` drops nulls, `AVG(covered)` over
//! `_telemetry.audit` computes the coverage rate over *scored* results
//! only — exactly the estimator the audit dashboards want.

use aqp_storage::{Batch, Column, DataType, Field, Schema, Table};

use crate::reservoir::Reservoir;

/// The reserved table-name prefix (`_telemetry.`) of every
/// introspection table.
pub const NAMESPACE: &str = "_telemetry";

/// One row per trace span: `query, class, span, stage, depth, wall_ms`.
pub const TABLE_SPANS: &str = "_telemetry.spans";
/// One row per executed query: mode, wall time, sample/population rows,
/// group count, fallback/degradation flags.
pub const TABLE_QUERIES: &str = "_telemetry.queries";
/// Periodic point-in-time metric samples: `query, metric, kind, value`.
pub const TABLE_METRICS: &str = "_telemetry.metrics";
/// One row per audited group-aggregate with its score
/// (estimate/truth/rel_error/coverage/diagnostic verdict).
pub const TABLE_AUDIT: &str = "_telemetry.audit";
/// One row per injected fault / retry / speculative event.
pub const TABLE_FAULTS: &str = "_telemetry.faults";
/// One row per SLO alert (burn-rate page/warn, drift signal).
pub const TABLE_SLO_ALERTS: &str = "_telemetry.slo_alerts";
/// One row per executed operator (the per-query mirror of the
/// contprof cumulative profile): `query, class, op, path, wall_ms,
/// rows_out`.
pub const TABLE_OPS: &str = "_telemetry.ops";

/// All telemetry table names, in registration order.
pub const TABLE_NAMES: [&str; 7] = [
    TABLE_SPANS,
    TABLE_QUERIES,
    TABLE_METRICS,
    TABLE_AUDIT,
    TABLE_FAULTS,
    TABLE_SLO_ALERTS,
    TABLE_OPS,
];

/// One dynamically typed cell of a telemetry row. Rows are buffered in
/// this row-major form inside the reservoirs and pivoted into columnar
/// [`Column`]s at sync time.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A non-null integer.
    Int(i64),
    /// A non-null float.
    Float(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// SQL NULL (only meaningful in nullable columns).
    Null,
}

impl Cell {
    fn as_i64(&self) -> Option<i64> {
        match self {
            Cell::Int(v) => Some(*v),
            Cell::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Cell::Float(v) => Some(*v),
            Cell::Int(v) => Some(*v as f64),
            Cell::Bool(b) => Some(f64::from(u8::from(*b))),
            _ => None,
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Cell::Str(s) => s.as_str(),
            _ => "",
        }
    }

    fn as_bool(&self) -> bool {
        matches!(self, Cell::Bool(true))
    }
}

/// The schema of one telemetry table.
pub fn schema_for(name: &str) -> Schema {
    use DataType::{Bool, Float, Int, Str};
    let fields = match name {
        TABLE_SPANS => vec![
            Field::new("query", Int),
            Field::new("class", Str),
            Field::new("span", Str),
            Field::new("stage", Str),
            Field::new("depth", Int),
            Field::new("wall_ms", Float),
        ],
        TABLE_QUERIES => vec![
            Field::new("query", Int),
            Field::new("class", Str),
            Field::new("mode", Str),
            Field::new("wall_ms", Float),
            Field::new("sample_rows", Int),
            Field::new("population_rows", Int),
            Field::new("groups", Int),
            Field::new("fell_back", Bool),
            Field::new("degraded", Bool),
        ],
        TABLE_METRICS => vec![
            Field::new("query", Int),
            Field::new("metric", Str),
            Field::new("kind", Str),
            Field::new("value", Float),
        ],
        TABLE_AUDIT => vec![
            Field::new("ordinal", Int),
            Field::new("class", Str),
            Field::new("agg", Str),
            Field::new("column", Str),
            Field::new("family", Str),
            Field::new("estimate", Float),
            Field::new("truth", Float),
            Field::nullable("rel_error", Float),
            Field::nullable("error_ratio", Float),
            Field::nullable("covered", Float),
            Field::nullable("accepted", Float),
        ],
        TABLE_FAULTS => vec![
            Field::new("query", Int),
            Field::new("class", Str),
            Field::new("kind", Str),
            Field::new("task", Int),
            Field::new("attempt", Int),
            Field::new("wall_ms", Float),
        ],
        TABLE_SLO_ALERTS => vec![
            Field::new("query", Int),
            Field::new("class", Str),
            Field::new("objective", Str),
            Field::new("severity", Str),
            Field::new("trigger", Str),
        ],
        TABLE_OPS => vec![
            Field::new("query", Int),
            Field::new("class", Str),
            Field::new("op", Str),
            Field::new("path", Str),
            Field::new("wall_ms", Float),
            Field::new("rows_out", Int),
        ],
        // Unreachable by construction (callers iterate TABLE_NAMES);
        // an empty schema keeps this path panic-free.
        _ => Vec::new(),
    };
    Schema::new(fields).unwrap_or_else(|_| Schema::empty())
}

/// One telemetry table: its schema plus the seeded reservoir buffering
/// its rows.
#[derive(Debug)]
pub struct TelemetryTable {
    /// Full table name (`_telemetry.…`).
    pub name: &'static str,
    /// The columnar schema rows are pivoted into.
    pub schema: Schema,
    /// The bounded row buffer.
    pub reservoir: Reservoir,
}

impl TelemetryTable {
    /// An empty table buffering at most `budget` rows under `seed`.
    pub fn new(name: &'static str, budget: usize, seed: u64) -> Self {
        TelemetryTable {
            name,
            schema: schema_for(name),
            reservoir: Reservoir::new(budget, seed),
        }
    }

    /// Pivot the retained rows into a columnar [`Table`] with
    /// `partitions` partitions (clamped to at least 1). Cells that do
    /// not match their column's type degrade to the column default
    /// (0 / "" / false) rather than failing — telemetry must never
    /// break the query path.
    pub fn materialize(&self, partitions: usize) -> aqp_storage::Result<Table> {
        let rows = self.reservoir.rows();
        let mut columns = Vec::with_capacity(self.schema.len());
        for (i, field) in self.schema.fields().iter().enumerate() {
            let cells = rows.iter().map(|r| r.get(i).unwrap_or(&Cell::Null));
            let col = match (field.data_type, field.nullable) {
                (DataType::Float, true) => {
                    Column::from_opt_f64s(cells.map(|c| c.as_f64()).collect())
                }
                (DataType::Float, false) => {
                    Column::from_f64s(cells.map(|c| c.as_f64().unwrap_or(0.0)).collect())
                }
                (DataType::Int, true) => {
                    Column::from_opt_i64s(cells.map(|c| c.as_i64()).collect())
                }
                (DataType::Int, false) => {
                    Column::from_i64s(cells.map(|c| c.as_i64().unwrap_or(0)).collect())
                }
                (DataType::Bool, _) => Column::from_bools(cells.map(|c| c.as_bool()).collect()),
                (DataType::Str, _) => {
                    Column::from_strs(&cells.map(|c| c.as_str()).collect::<Vec<_>>())
                }
            };
            columns.push(col);
        }
        let batch = Batch::new(self.schema.clone(), columns)?;
        Table::from_batch(self.name, batch, partitions.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table_has_a_nonempty_schema_under_the_namespace() {
        for name in TABLE_NAMES {
            assert!(name.starts_with(NAMESPACE));
            let schema = schema_for(name);
            assert!(!schema.is_empty(), "{name} has an empty schema");
        }
    }

    #[test]
    fn materialize_pivots_rows_and_honors_nulls() {
        let mut t = TelemetryTable::new(TABLE_AUDIT, 16, 0);
        t.reservoir.offer(vec![
            Cell::Int(1),
            Cell::Str("default".into()),
            Cell::Str("AVG".into()),
            Cell::Str("time".into()),
            Cell::Str("uniform".into()),
            Cell::Float(10.0),
            Cell::Float(10.5),
            Cell::Float(0.05),
            Cell::Float(0.4),
            Cell::Float(1.0),
            Cell::Null,
        ]);
        t.reservoir.offer(vec![
            Cell::Int(2),
            Cell::Str("default".into()),
            Cell::Str("MAX".into()),
            Cell::Str("time".into()),
            Cell::Str("heavy_tail".into()),
            Cell::Float(90.0),
            Cell::Float(200.0),
            Cell::Null,
            Cell::Null,
            Cell::Float(0.0),
            Cell::Float(1.0),
        ]);
        let table = t.materialize(2).unwrap();
        assert_eq!(table.num_rows(), 2);
        assert_eq!(table.num_partitions(), 2);
        let batch = table.to_batch().unwrap();
        let covered = batch.column_by_name("covered").unwrap();
        // AVG over a nullable 0/1 column = coverage over scored rows.
        assert_eq!(covered.to_f64_vec(), vec![1.0, 0.0]);
        let rel = batch.column_by_name("rel_error").unwrap();
        assert!(rel.is_null(1) && !rel.is_null(0));
    }

    #[test]
    fn materialize_of_an_empty_table_yields_zero_rows() {
        let t = TelemetryTable::new(TABLE_SPANS, 8, 0);
        let table = t.materialize(2).unwrap();
        assert_eq!(table.num_rows(), 0);
        assert_eq!(table.schema().len(), 6);
    }
}

//! `aqp-introspect`: self-hosted telemetry analytics.
//!
//! PRs 2–8 made the system produce telemetry — traces, metrics, audit
//! scores, fault events, SLO alerts, operator profiles — but consumed
//! it through hand-rolled JSONL parsers and bespoke dashboards. This
//! crate closes the loop: live telemetry folds into bounded columnar
//! tables (the same null-bitmap `aqp-storage` format every other table
//! uses), registered in the catalog under the reserved `_telemetry`
//! namespace, so the AQP engine itself answers questions about its own
//! behaviour — *with error bars*. "p95 wall time by stage" or
//! "CI-coverage rate by column family" become ordinary aqp-sql queries
//! that return confidence intervals and diagnostic verdicts, exactly
//! the bounded-error regime the paper formalizes for user data.
//!
//! # Determinism
//!
//! Each table is a seeded reservoir ([`reservoir::Reservoir`], Vitter's
//! Algorithm R with the slot drawn from an [`aqp_stats::rng::SeedStream`]):
//! retention is a pure function of *(seed, event sequence)*, so a
//! fixed-seed run folds a bit-identical table — and a fixed-seed
//! introspection query returns a bit-identical answer + CI + verdict —
//! across processes. The CI `introspect-smoke` job byte-diffs exactly
//! that.
//!
//! # Recursion guard
//!
//! Introspection queries are themselves queries; folding them back into
//! the tables they read would make every dashboard refresh perturb the
//! data it displays. Queries that reference the `_telemetry` namespace
//! are therefore excluded from fold-in unless
//! [`IntrospectConfig::with_recursive`] opts in.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod pipeline;
pub mod reservoir;
pub mod tables;

pub use config::IntrospectConfig;
pub use pipeline::{Introspector, QueryRecord};
pub use tables::{Cell, NAMESPACE, TABLE_AUDIT, TABLE_FAULTS, TABLE_METRICS, TABLE_OPS,
    TABLE_QUERIES, TABLE_SLO_ALERTS, TABLE_SPANS};

//! The fold-in pipeline: per-query telemetry → reservoir rows →
//! catalog-registered columnar tables.
//!
//! [`Introspector`] is owned by the session. After every non-telemetry
//! query the session calls [`Introspector::fold_query`] with the
//! finished trace and answer facts; before executing a query that
//! references the `_telemetry` namespace it calls
//! [`Introspector::sync_into`], which re-materializes every table whose
//! reservoir changed since the last sync and rebuilds its uniform
//! sample — so the approximate path (CIs + diagnostics) engages on ops
//! data exactly as it does on user data.

use std::sync::Arc;

use aqp_audit::score::{score, AuditedAggregate};
use aqp_obs::{name, Counter, MetricsRegistry, ObsHandle, QueryTrace};
use aqp_prof::OpProfile;
use aqp_stats::rng::SeedStream;
use aqp_storage::{Catalog, SamplingStrategy, StorageError};
use parking_lot::Mutex;

use crate::config::IntrospectConfig;
use crate::tables::{Cell, TelemetryTable, TABLE_AUDIT, TABLE_FAULTS, TABLE_METRICS, TABLE_NAMES,
    TABLE_OPS, TABLE_QUERIES, TABLE_SLO_ALERTS, TABLE_SPANS};

/// Everything the session knows about one finished query, borrowed for
/// the duration of the fold.
#[derive(Debug)]
pub struct QueryRecord<'a> {
    /// The query text (classified by the config's shared class router).
    pub sql: &'a str,
    /// The full lifecycle trace.
    pub trace: &'a QueryTrace,
    /// Answer mode label (`approximate`, `exact`, `exact_fallback`, …).
    pub mode: &'a str,
    /// End-to-end wall time on the session clock, milliseconds.
    pub wall_ms: f64,
    /// Rows of the sample the answer ran on (0 for exact scans).
    pub sample_rows: u64,
    /// Rows of the full table.
    pub population_rows: u64,
    /// Result groups produced.
    pub groups: u64,
    /// Whether the diagnostic forced an exact (or partial) fallback.
    pub fell_back: bool,
    /// Whether fault losses degraded the sample (widened CIs).
    pub degraded: bool,
    /// The per-query operator profile, when one was assembled.
    pub profile: Option<&'a OpProfile>,
    /// SLO alerts this query latched, as `(objective, severity,
    /// trigger)` strings.
    pub slo_alerts: &'a [(String, String, String)],
}

struct State {
    tables: Vec<TelemetryTable>,
    /// Queries folded so far; doubles as the `query` ordinal column.
    folded: u64,
    /// Per-table reservoir sequence at the last catalog sync, used to
    /// skip re-materializing unchanged tables.
    synced_seq: Vec<Option<u64>>,
}

/// The in-process introspection pipeline (see the module docs).
pub struct Introspector {
    cfg: IntrospectConfig,
    registry: Arc<MetricsRegistry>,
    rows_ingested: Counter,
    rows_dropped: Counter,
    queries_folded: Counter,
    queries_served: Counter,
    syncs: Counter,
    state: Mutex<State>,
}

impl std::fmt::Debug for Introspector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Introspector").field("cfg", &self.cfg).finish_non_exhaustive()
    }
}

impl Introspector {
    /// Build the pipeline: one seeded reservoir per `_telemetry.*`
    /// table, metrics registered on `obs` (only now — a session without
    /// introspection never registers the `aqp.introspect.*` family).
    pub fn new(cfg: IntrospectConfig, obs: &ObsHandle) -> Self {
        let seeds = SeedStream::new(cfg.seed);
        let tables = TABLE_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| TelemetryTable::new(name, cfg.budget_rows, seeds.seed(i as u64)))
            .collect::<Vec<_>>();
        let synced_seq = vec![None; tables.len()];
        let m = &obs.metrics;
        Introspector {
            rows_ingested: m.counter(name::INTROSPECT_ROWS_INGESTED),
            rows_dropped: m.counter(name::INTROSPECT_ROWS_DROPPED),
            queries_folded: m.counter(name::INTROSPECT_QUERIES_FOLDED),
            queries_served: m.counter(name::INTROSPECT_QUERIES_SERVED),
            syncs: m.counter(name::INTROSPECT_SYNCS),
            registry: Arc::clone(&obs.metrics),
            cfg,
            state: Mutex::new(State { tables, folded: 0, synced_seq }),
        }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &IntrospectConfig {
        &self.cfg
    }

    /// Does `sql` read the reserved telemetry namespace?
    pub fn is_introspection_query(&self, sql: &str) -> bool {
        sql.contains("_telemetry.")
    }

    /// The recursion guard: should this query's telemetry fold into the
    /// tables? Non-telemetry queries always fold; telemetry queries
    /// fold only when [`IntrospectConfig::allow_recursive`] opted in.
    pub fn should_fold(&self, sql: &str) -> bool {
        self.cfg.allow_recursive || !self.is_introspection_query(sql)
    }

    /// Count one served introspection query
    /// (`aqp.introspect.queries_served`).
    pub fn count_served(&self) {
        self.queries_served.inc();
    }

    /// Fold one finished query's telemetry into the tables: a
    /// `_telemetry.queries` row, one `_telemetry.spans` row per trace
    /// span, fault events, operator rows, SLO alerts, and (every
    /// `metrics_every`th fold) a point-in-time metrics snapshot.
    pub fn fold_query(&self, rec: &QueryRecord<'_>) {
        let class = self.cfg.classes.classify(rec.sql).to_string();
        let mut state = self.state.lock();
        state.folded += 1;
        let qid = state.folded as i64;
        // Snapshot before taking the mutable table borrow; the sample
        // lags this query's own fold by design (point-in-time).
        let snap = (self.cfg.metrics_every > 0 && state.folded.is_multiple_of(self.cfg.metrics_every))
            .then(|| self.registry.snapshot());
        let mut ingested = 0u64;
        let mut dropped = 0u64;
        {
            let state = &mut *state;
            let mut offer = |idx: usize, row: Vec<Cell>| {
                let before = state.tables[idx].reservoir.dropped();
                state.tables[idx].reservoir.offer(row);
                ingested += 1;
                dropped += state.tables[idx].reservoir.dropped() - before;
            };

            offer(
                index_of(TABLE_QUERIES),
                vec![
                    Cell::Int(qid),
                    Cell::Str(class.clone()),
                    Cell::Str(rec.mode.to_string()),
                    Cell::Float(rec.wall_ms),
                    Cell::Int(rec.sample_rows as i64),
                    Cell::Int(rec.population_rows as i64),
                    Cell::Int(rec.groups as i64),
                    Cell::Bool(rec.fell_back),
                    Cell::Bool(rec.degraded),
                ],
            );

            for (i, span) in rec.trace.spans.iter().enumerate() {
                let (stage, depth) = stage_of(rec.trace, i);
                let wall_ms = span.duration().as_secs_f64() * 1e3;
                offer(
                    index_of(TABLE_SPANS),
                    vec![
                        Cell::Int(qid),
                        Cell::Str(class.clone()),
                        Cell::Str(span.name.clone()),
                        stage,
                        Cell::Int(depth),
                        Cell::Float(wall_ms),
                    ],
                );
                if let Some(kind) = fault_kind(&span.name) {
                    let task = span.attr("task").and_then(|v| v.parse::<i64>().ok());
                    let attempt = span.attr("attempt").and_then(|v| v.parse::<i64>().ok());
                    offer(
                        index_of(TABLE_FAULTS),
                        vec![
                            Cell::Int(qid),
                            Cell::Str(class.clone()),
                            Cell::Str(kind.to_string()),
                            Cell::Int(task.unwrap_or(-1)),
                            Cell::Int(attempt.unwrap_or(-1)),
                            Cell::Float(wall_ms),
                        ],
                    );
                }
            }

            if let Some(profile) = rec.profile {
                let mut stack = vec![(profile, String::new())];
                while let Some((node, prefix)) = stack.pop() {
                    let path = if prefix.is_empty() {
                        node.name.clone()
                    } else {
                        format!("{prefix};{}", node.name)
                    };
                    offer(
                        index_of(TABLE_OPS),
                        vec![
                            Cell::Int(qid),
                            Cell::Str(class.clone()),
                            Cell::Str(node.name.clone()),
                            Cell::Str(path.clone()),
                            Cell::Float(node.wall.as_secs_f64() * 1e3),
                            Cell::Int(node.rows_out as i64),
                        ],
                    );
                    for child in &node.children {
                        stack.push((child, path.clone()));
                    }
                }
            }

            for (objective, severity, trigger) in rec.slo_alerts {
                offer(
                    index_of(TABLE_SLO_ALERTS),
                    vec![
                        Cell::Int(qid),
                        Cell::Str(class.clone()),
                        Cell::Str(objective.clone()),
                        Cell::Str(severity.clone()),
                        Cell::Str(trigger.clone()),
                    ],
                );
            }

            if let Some(snap) = &snap {
                for (metric, v) in &snap.counters {
                    offer(
                        index_of(TABLE_METRICS),
                        vec![
                            Cell::Int(qid),
                            Cell::Str(metric.clone()),
                            Cell::Str("counter".to_string()),
                            Cell::Float(*v as f64),
                        ],
                    );
                }
                for (metric, v) in &snap.gauges {
                    offer(
                        index_of(TABLE_METRICS),
                        vec![
                            Cell::Int(qid),
                            Cell::Str(metric.clone()),
                            Cell::Str("gauge".to_string()),
                            Cell::Float(*v),
                        ],
                    );
                }
                for (metric, h) in &snap.histograms {
                    offer(
                        index_of(TABLE_METRICS),
                        vec![
                            Cell::Int(qid),
                            Cell::Str(metric.clone()),
                            Cell::Str("histogram_count".to_string()),
                            Cell::Float(h.count as f64),
                        ],
                    );
                }
            }
        }
        drop(state);
        self.queries_folded.inc();
        self.rows_ingested.add(ingested);
        if dropped > 0 {
            self.rows_dropped.add(dropped);
        }
    }

    /// Fold the scored results of one audit replay into
    /// `_telemetry.audit` — one row per audited group-aggregate, with
    /// nullable score columns so `AVG(covered)` is the coverage rate
    /// over scored results.
    pub fn fold_audit(&self, ordinal: u64, sql: &str, aggregates: &[AuditedAggregate]) {
        let class = self.cfg.classes.classify(sql).to_string();
        let mut state = self.state.lock();
        let idx = index_of(TABLE_AUDIT);
        let mut ingested = 0u64;
        let mut dropped = 0u64;
        for a in aggregates {
            let s = score(a);
            let row = vec![
                Cell::Int(ordinal as i64),
                Cell::Str(class.clone()),
                Cell::Str(a.agg.clone()),
                Cell::Str(a.column.clone()),
                Cell::Str(a.family.clone()),
                Cell::Float(a.estimate),
                Cell::Float(a.truth),
                opt_f64(s.rel_error),
                opt_f64(s.error_ratio),
                opt_f64(s.covered.map(|c| f64::from(u8::from(c)))),
                opt_f64(a.diagnostic_accepted.map(|c| f64::from(u8::from(c)))),
            ];
            let before = state.tables[idx].reservoir.dropped();
            state.tables[idx].reservoir.offer(row);
            ingested += 1;
            dropped += state.tables[idx].reservoir.dropped() - before;
        }
        drop(state);
        self.rows_ingested.add(ingested);
        if dropped > 0 {
            self.rows_dropped.add(dropped);
        }
    }

    /// Fold one SLO alert latched outside the per-query fold (audit
    /// coverage alerts fire inside the audit path, before `fold_query`
    /// runs for that query — the row is stamped with the upcoming query
    /// ordinal).
    pub fn fold_slo_alert(&self, sql: &str, objective: &str, severity: &str, trigger: &str) {
        let class = self.cfg.classes.classify(sql).to_string();
        let mut state = self.state.lock();
        let qid = (state.folded + 1) as i64;
        let idx = index_of(TABLE_SLO_ALERTS);
        let before = state.tables[idx].reservoir.dropped();
        state.tables[idx].reservoir.offer(vec![
            Cell::Int(qid),
            Cell::Str(class),
            Cell::Str(objective.to_string()),
            Cell::Str(severity.to_string()),
            Cell::Str(trigger.to_string()),
        ]);
        let after = state.tables[idx].reservoir.dropped();
        drop(state);
        self.rows_ingested.inc();
        if after > before {
            self.rows_dropped.add(after - before);
        }
    }

    /// Re-materialize every table whose reservoir changed since the
    /// last sync into `catalog` (drop + register, which also resets the
    /// table's samples) and rebuild a seeded uniform sample over it so
    /// the approximate path engages. Unchanged tables are left alone.
    pub fn sync_into(&self, catalog: &Catalog) -> Result<(), StorageError> {
        let mut guard = self.state.lock();
        let state = &mut *guard;
        let mut synced_any = false;
        for (i, t) in state.tables.iter().enumerate() {
            let seq = t.reservoir.seq();
            if state.synced_seq[i] == Some(seq) && catalog.has_table(t.name) {
                continue;
            }
            let table = t.materialize(self.cfg.partitions)?;
            let rows = table.num_rows();
            // drop_table also clears the previous version's samples; a
            // missing table (first sync) is fine.
            let _ = catalog.drop_table(t.name);
            catalog.register_table(table)?;
            if rows >= self.cfg.min_rows_for_sampling.max(1) {
                let n = ((rows as f64 * self.cfg.sample_fraction).round() as usize)
                    .clamp(1, rows);
                // The sample must be a pure function of (seed, event
                // sequence) too: derive its rng from the table index
                // and the reservoir sequence of this materialization.
                let seeds = SeedStream::new(self.cfg.seed ^ 0x5EED_1A7B).derive(i as u64);
                let mut rng = seeds.rng(seq);
                let idx =
                    aqp_stats::sampling::without_replacement_indices(&mut rng, n, rows);
                let source = catalog.table(t.name)?;
                catalog.with_samples_mut(t.name, |set| {
                    set.add_from_indices(
                        &source,
                        &idx,
                        SamplingStrategy::WithoutReplacement,
                        seeds.seed(seq),
                        self.cfg.partitions.max(1),
                    )?;
                    Ok(())
                })?;
            }
            state.synced_seq[i] = Some(seq);
            synced_any = true;
        }
        if synced_any {
            self.syncs.inc();
        }
        Ok(())
    }
}

fn opt_f64(v: Option<f64>) -> Cell {
    match v {
        Some(v) => Cell::Float(v),
        None => Cell::Null,
    }
}

/// Position of a table name inside [`TABLE_NAMES`]; the names are
/// compile-time constants, so a miss is unreachable — 0 keeps the path
/// panic-free anyway.
fn index_of(name: &str) -> usize {
    TABLE_NAMES.iter().position(|n| *n == name).unwrap_or(0)
}

/// The root ancestor's name (the lifecycle stage) and depth of span `i`.
fn stage_of(trace: &QueryTrace, i: usize) -> (Cell, i64) {
    let mut depth = 0i64;
    let mut at = i;
    let mut hops = 0;
    while let Some(parent) = trace.spans.get(at).and_then(|s| s.parent) {
        at = parent;
        depth += 1;
        hops += 1;
        if hops > trace.spans.len() {
            break; // defensive: a parent cycle must not hang the fold
        }
    }
    let stage = trace.spans.get(at).map(|s| s.name.clone()).unwrap_or_default();
    (Cell::Str(stage), depth)
}

/// The fault-event kind of a span name (`fault:crash`, `retry:backoff`,
/// `speculative:clone`, …) — `None` for ordinary lifecycle spans.
fn fault_kind(span_name: &str) -> Option<&str> {
    if span_name.starts_with("fault:")
        || span_name.starts_with("retry:")
        || span_name.starts_with("speculative:")
    {
        Some(span_name)
    } else {
        None
    }
}

//! Deterministic seeded reservoir downsampling (Vitter's Algorithm R).
//!
//! Once a telemetry table's row budget fills, each new event either
//! replaces a uniformly chosen resident row or is dropped, keeping a
//! uniform sample of the full event stream in bounded memory. The slot
//! draw comes from a [`SeedStream`] labelled with the event's sequence
//! number, so retention — and therefore every downstream query answer —
//! is a pure function of *(seed, event sequence)*, never of wall-clock
//! timing or thread interleaving.

use aqp_stats::rng::SeedStream;

use crate::tables::Cell;

/// A bounded, seeded reservoir of telemetry rows.
#[derive(Debug)]
pub struct Reservoir {
    budget: usize,
    seeds: SeedStream,
    seq: u64,
    dropped: u64,
    rows: Vec<Vec<Cell>>,
}

impl Reservoir {
    /// An empty reservoir holding at most `budget` rows (at least 1).
    pub fn new(budget: usize, seed: u64) -> Self {
        Reservoir {
            budget: budget.max(1),
            seeds: SeedStream::new(seed),
            seq: 0,
            dropped: 0,
            rows: Vec::new(),
        }
    }

    /// Offer one row. Below budget it is appended; at budget, Algorithm
    /// R keeps it with probability `budget / (seq + 1)` by overwriting
    /// a seeded-uniform resident slot, else drops it. Returns `true`
    /// when the row was retained.
    pub fn offer(&mut self, row: Vec<Cell>) -> bool {
        let seq = self.seq;
        self.seq += 1;
        if self.rows.len() < self.budget {
            self.rows.push(row);
            return true;
        }
        // Uniform draw over [0, seq] via the per-event derived seed; the
        // modulo bias over a u64 range is < 2^-40 for any plausible
        // budget and irrelevant next to bit-stability, which only needs
        // the draw to be a pure function of (seed, seq).
        let j = (self.seeds.seed(seq) % (seq + 1)) as usize;
        if j < self.budget {
            self.rows[j] = row;
            true
        } else {
            self.dropped += 1;
            false
        }
    }

    /// Retained rows, in slot order.
    pub fn rows(&self) -> &[Vec<Cell>] {
        &self.rows
    }

    /// Total rows ever offered.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Rows offered but not retained (replaced residents are not
    /// counted here; this is the rejection count of the final stream).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: i64) -> Vec<Cell> {
        vec![Cell::Int(i)]
    }

    #[test]
    fn below_budget_everything_is_kept_in_order() {
        let mut r = Reservoir::new(4, 7);
        for i in 0..4 {
            assert!(r.offer(row(i)));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.rows()[2], row(2));
    }

    #[test]
    fn over_budget_retention_is_bounded_and_deterministic() {
        let run = |seed: u64| {
            let mut r = Reservoir::new(8, seed);
            for i in 0..1000 {
                r.offer(row(i));
            }
            (r.rows().to_vec(), r.dropped())
        };
        let (rows_a, dropped_a) = run(42);
        let (rows_b, dropped_b) = run(42);
        assert_eq!(rows_a, rows_b);
        assert_eq!(dropped_a, dropped_b);
        assert_eq!(rows_a.len(), 8);
        // Of the 992 over-budget offers, each was either dropped or
        // replaced a resident; with budget 8 over a 1000-row stream the
        // vast majority must be drops.
        assert!(dropped_a > 900 && dropped_a < 992, "dropped {dropped_a}");
        // A different seed retains a different subset.
        let (rows_c, _) = run(43);
        assert_ne!(rows_a, rows_c);
    }

    #[test]
    fn reservoir_stays_roughly_uniform() {
        // Offer 0..2000 into a budget of 200; the retained mean should
        // land near the stream mean (999.5), not near either end.
        let mut r = Reservoir::new(200, 1);
        for i in 0..2000 {
            r.offer(row(i));
        }
        let mean: f64 = r
            .rows()
            .iter()
            .map(|c| match c[0] {
                Cell::Int(i) => i as f64,
                _ => 0.0,
            })
            .sum::<f64>()
            / r.len() as f64;
        assert!((mean - 999.5).abs() < 250.0, "mean {mean} far from uniform");
    }
}

//! # aqp-diagnostics
//!
//! The error-estimation diagnostic of Kleiner et al. (KDD 2013),
//! specialized to query approximation exactly as in Appendix A of
//! *Knowing When You're Wrong* (SIGMOD 2014), and generalized over the
//! error-estimation procedure ξ (§4.1: bootstrap *or* closed forms).
//!
//! The idea: if S is a simple random sample from D, disjoint partitions of
//! S are themselves mutually independent simple random samples from D —
//! so we can afford to run the "ideal" evaluation (does ξ's interval match
//! the true interval?) at a *sequence of small subsample sizes*
//! b₁ < … < b_k and extrapolate: if ξ's relative deviation from the truth
//! shrinks (or is already small) as b grows, and is tight at b_k, we
//! accept ξ's interval on the full sample.
//!
//! * [`config::DiagnosticConfig`] — the parameters (p, k, b₁..b_k, c₁, c₂,
//!   c₃, ρ), defaulting to the paper's settings.
//! * [`kleiner`] — Algorithm 1 itself, in two layers: a pure decision
//!   kernel over precomputed per-subsample estimates (reused by the
//!   engine's diagnostic operator), and a convenience driver that computes
//!   those estimates from a values vector.
//! * [`ground_truth`] — the expensive "ideal diagnostic" used to measure
//!   the real diagnostic's false-positive/negative rates (Fig. 4).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod ground_truth;
pub mod kleiner;

pub use config::DiagnosticConfig;
pub use ground_truth::DiagnosticOutcome;
pub use kleiner::{run_diagnostic, DiagnosticReport, LevelEstimates, LevelReport};

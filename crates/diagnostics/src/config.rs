//! Diagnostic parameters.

use serde::{Deserialize, Serialize};

/// Parameters of Algorithm 1.
///
/// Paper defaults (Appendix A): p = 100, k = 3, c₁ = 0.2, c₂ = 0.2,
/// c₃ = 0.5, ρ = 0.95 (the paper's β), on subsamples of 50 MB / 100 MB /
/// 200 MB. We parameterize subsamples by *row count*; [`DiagnosticConfig::paper_defaults`]
/// converts the paper's megabytes at its ~100-byte production row width.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagnosticConfig {
    /// Number of simulated subsamples p at each size.
    pub p: usize,
    /// Increasing subsample sizes b₁ < … < b_k, in pre-filter rows.
    pub subsample_rows: Vec<usize>,
    /// Acceptable relative deviation of the mean error estimate (c₁).
    pub c1: f64,
    /// Acceptable relative spread of the error estimates (c₂).
    pub c2: f64,
    /// Per-subsample closeness threshold for π (c₃).
    pub c3: f64,
    /// Minimum proportion of size-b_k subsamples whose estimate is within
    /// c₃ of the truth (ρ).
    pub rho: f64,
    /// Interval coverage α the error estimates target.
    pub alpha: f64,
}

impl DiagnosticConfig {
    /// The paper's settings, with 50/100/200 MB subsamples converted to
    /// rows at `bytes_per_row`.
    pub fn paper_defaults(bytes_per_row: usize) -> Self {
        let mb = 1_000_000usize;
        DiagnosticConfig {
            p: 100,
            subsample_rows: vec![
                50 * mb / bytes_per_row,
                100 * mb / bytes_per_row,
                200 * mb / bytes_per_row,
            ],
            c1: 0.2,
            c2: 0.2,
            c3: 0.5,
            rho: 0.95,
            alpha: 0.95,
        }
    }

    /// Sizes scaled to a sample of `sample_rows` rows: three geometric
    /// levels ending at `sample_rows / p`, the largest size for which p
    /// disjoint subsamples exist.
    pub fn scaled_to(sample_rows: usize, p: usize) -> Self {
        let bk = (sample_rows / p).max(4);
        DiagnosticConfig {
            p,
            subsample_rows: vec![(bk / 4).max(1), (bk / 2).max(2), bk],
            c1: 0.2,
            c2: 0.2,
            c3: 0.5,
            rho: 0.95,
            alpha: 0.95,
        }
    }

    /// A small, fast configuration for tests.
    pub fn fast() -> Self {
        DiagnosticConfig::scaled_to(20_000, 30)
    }

    /// k — the number of subsample sizes.
    pub fn k(&self) -> usize {
        self.subsample_rows.len()
    }

    /// Validate internal consistency against a sample of `sample_rows`
    /// pre-filter rows.
    pub fn validate(&self, sample_rows: usize) -> Result<(), String> {
        if self.p < 2 {
            return Err("p must be at least 2".into());
        }
        if self.subsample_rows.is_empty() {
            return Err("need at least one subsample size".into());
        }
        if !self.subsample_rows.windows(2).all(|w| w[0] < w[1]) {
            return Err("subsample sizes must be strictly increasing".into());
        }
        let bk = *self.subsample_rows.last().unwrap();
        if bk * self.p > sample_rows {
            return Err(format!(
                "p·b_k = {} exceeds the sample size {sample_rows}; cannot form disjoint subsamples",
                bk * self.p
            ));
        }
        if !(0.0 < self.alpha && self.alpha < 1.0) {
            return Err("alpha must be in (0,1)".into());
        }
        if !(0.0 < self.rho && self.rho <= 1.0) {
            return Err("rho must be in (0,1]".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_appendix() {
        let cfg = DiagnosticConfig::paper_defaults(100);
        assert_eq!(cfg.p, 100);
        assert_eq!(cfg.subsample_rows, vec![500_000, 1_000_000, 2_000_000]);
        assert_eq!(cfg.c1, 0.2);
        assert_eq!(cfg.c2, 0.2);
        assert_eq!(cfg.c3, 0.5);
        assert_eq!(cfg.rho, 0.95);
        assert_eq!(cfg.k(), 3);
    }

    #[test]
    fn scaled_sizes_fit_disjointly() {
        let cfg = DiagnosticConfig::scaled_to(100_000, 50);
        cfg.validate(100_000).unwrap();
        assert_eq!(*cfg.subsample_rows.last().unwrap() * cfg.p, 100_000);
    }

    #[test]
    fn validation_catches_oversized_subsamples() {
        let mut cfg = DiagnosticConfig::fast();
        cfg.subsample_rows = vec![10, 20, 10_000];
        assert!(cfg.validate(20_000).is_err());
    }

    #[test]
    fn validation_catches_non_increasing() {
        let mut cfg = DiagnosticConfig::fast();
        cfg.subsample_rows = vec![100, 100, 200];
        assert!(cfg.validate(1_000_000).is_err());
    }

    #[test]
    fn validation_catches_bad_scalars() {
        let mut cfg = DiagnosticConfig::fast();
        cfg.p = 1;
        assert!(cfg.validate(1_000_000).is_err());
        let mut cfg = DiagnosticConfig::fast();
        cfg.alpha = 1.0;
        assert!(cfg.validate(1_000_000).is_err());
    }
}

//! Algorithm 1 of the paper (the Kleiner et al. diagnostic).
//!
//! Two layers:
//!
//! 1. [`evaluate_from_estimates`] — the pure decision kernel. Takes, for
//!    each subsample size b_i, the subsample point estimates
//!    t̂ᵢ₁..t̂ᵢₚ and ξ's interval half-widths x̂ᵢ₁..x̂ᵢₚ, plus θ(S); computes
//!    xᵢ (the per-size true half-width), the summary statistics Δᵢ, σᵢ,
//!    πᵢ, and checks the acceptance criteria. The query engine's
//!    diagnostic *operator* feeds this kernel from a single scan.
//! 2. [`run_diagnostic`] — a self-contained driver over a values vector,
//!    used by the stats-level experiments and tests.

use serde::{Deserialize, Serialize};

use aqp_stats::ci::symmetric_half_width;
use aqp_stats::error_estimator::{ErrorEstimator, Theta};
use aqp_stats::estimator::SampleContext;
use aqp_stats::rng::SeedStream;

use crate::config::DiagnosticConfig;

/// Per-subsample-size inputs to the decision kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelEstimates {
    /// Subsample size b_i in pre-filter rows.
    pub b: usize,
    /// θ evaluated on each of the p disjoint subsamples.
    pub theta_hats: Vec<f64>,
    /// ξ's interval half-width on each subsample (NaN = ξ degenerate
    /// there).
    pub xi_half_widths: Vec<f64>,
}

/// Per-size summary in the report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelReport {
    /// Subsample size b_i.
    pub b: usize,
    /// The per-size ground-truth half-width xᵢ (smallest symmetric
    /// interval around θ(S) covering α·p of the subsample estimates).
    pub x: f64,
    /// Δᵢ = |mean(x̂ᵢ·) − xᵢ| / xᵢ — relative deviation of the mean.
    pub mean_deviation: f64,
    /// σᵢ = stddev(x̂ᵢ·) / xᵢ — relative spread.
    pub relative_spread: f64,
    /// πᵢ — proportion of subsamples with |x̂ᵢⱼ − xᵢ|/xᵢ ≤ c₃.
    pub close_proportion: f64,
    /// Whether Δᵢ was acceptable (only meaningful for i ≥ 2).
    pub deviation_ok: bool,
    /// Whether σᵢ was acceptable (only meaningful for i ≥ 2).
    pub spread_ok: bool,
}

/// The diagnostic's output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiagnosticReport {
    /// Per-size summaries, smallest b first.
    pub levels: Vec<LevelReport>,
    /// π_k ≥ ρ?
    pub final_proportion_ok: bool,
    /// The overall verdict: `true` means "confidence-interval estimation
    /// works well for this query; it is safe to show ξ's error bars".
    pub accepted: bool,
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// The decision kernel: Algorithm 1 given precomputed estimates.
///
/// `theta_s` is θ(S), the full-sample point estimate the per-size true
/// intervals are centered on. Levels must be ordered by increasing b.
pub fn evaluate_from_estimates(
    theta_s: f64,
    levels: &[LevelEstimates],
    cfg: &DiagnosticConfig,
) -> DiagnosticReport {
    assert!(!levels.is_empty(), "diagnostic needs at least one level");

    let mut reports: Vec<LevelReport> = Vec::with_capacity(levels.len());
    for level in levels {
        // Drop degenerate estimates (NaN θ̂ on an empty subsample, or ξ
        // failures); they count against π implicitly by shrinking the
        // numerator but not p.
        let t_hats: Vec<f64> =
            level.theta_hats.iter().copied().filter(|t| t.is_finite()).collect();
        let x_hats: Vec<f64> =
            level.xi_half_widths.iter().copied().filter(|x| x.is_finite()).collect();
        let p = level.theta_hats.len().max(1);

        if t_hats.is_empty() || x_hats.is_empty() {
            reports.push(LevelReport {
                b: level.b,
                x: f64::NAN,
                mean_deviation: f64::INFINITY,
                relative_spread: f64::INFINITY,
                close_proportion: 0.0,
                deviation_ok: false,
                spread_ok: false,
            });
            continue;
        }

        // xᵢ: smallest symmetric interval around θ(S) covering α of the
        // subsample estimates.
        let x = symmetric_half_width(theta_s, &t_hats, cfg.alpha);

        let (mean_dev, spread, close) = if x > 0.0 {
            let d = (mean(&x_hats) - x).abs() / x;
            let s = stddev(&x_hats) / x;
            let close = level
                .xi_half_widths
                .iter()
                .filter(|&&xh| xh.is_finite() && ((xh - x) / x).abs() <= cfg.c3)
                .count() as f64
                / p as f64;
            (d, s, close)
        } else {
            // Degenerate truth (constant estimator): accept iff ξ also
            // reports (near-)zero error.
            let all_zero = x_hats.iter().all(|&xh| xh.abs() < 1e-12);
            if all_zero {
                (0.0, 0.0, 1.0)
            } else {
                (f64::INFINITY, f64::INFINITY, 0.0)
            }
        };

        reports.push(LevelReport {
            b: level.b,
            x,
            mean_deviation: mean_dev,
            relative_spread: spread,
            close_proportion: close,
            deviation_ok: true, // filled below for i ≥ 2
            spread_ok: true,
        });
    }

    // Acceptance criteria: deviations/spreads decreasing or small, final
    // proportion large.
    let mut accepted = true;
    for i in 1..reports.len() {
        let dev_ok = reports[i].mean_deviation < reports[i - 1].mean_deviation
            || reports[i].mean_deviation < cfg.c1;
        let spread_ok = reports[i].relative_spread < reports[i - 1].relative_spread
            || reports[i].relative_spread < cfg.c2;
        reports[i].deviation_ok = dev_ok;
        reports[i].spread_ok = spread_ok;
        accepted &= dev_ok && spread_ok;
    }
    let final_proportion_ok = reports.last().map(|r| r.close_proportion >= cfg.rho).unwrap_or(false);
    accepted &= final_proportion_ok;
    // A single-level diagnostic degenerates to the final-proportion check.

    let report = DiagnosticReport { levels: reports, final_proportion_ok, accepted };
    record_verdict(&report);
    report
}

/// Telemetry for every diagnostic run: the verdict plus per-check
/// failure counts, on the global metrics registry
/// (`aqp.diagnostics.*`). Handles are cached; each run costs a handful
/// of atomic adds.
fn record_verdict(report: &DiagnosticReport) {
    use std::sync::OnceLock;
    struct Handles {
        accepted: aqp_obs::Counter,
        rejected: aqp_obs::Counter,
        deviation: aqp_obs::Counter,
        spread: aqp_obs::Counter,
        proportion: aqp_obs::Counter,
    }
    static H: OnceLock<Handles> = OnceLock::new();
    let h = H.get_or_init(|| {
        let reg = aqp_obs::MetricsRegistry::global();
        Handles {
            accepted: reg.counter(aqp_obs::name::DIAG_ACCEPTED),
            rejected: reg.counter(aqp_obs::name::DIAG_REJECTED),
            deviation: reg.counter(aqp_obs::name::DIAG_DEVIATION_FAILURES),
            spread: reg.counter(aqp_obs::name::DIAG_SPREAD_FAILURES),
            proportion: reg.counter(aqp_obs::name::DIAG_PROPORTION_FAILURES),
        }
    });
    if report.accepted {
        h.accepted.inc();
    } else {
        h.rejected.inc();
    }
    let dev_failures = report.levels.iter().filter(|l| !l.deviation_ok).count();
    let spread_failures = report.levels.iter().filter(|l| !l.spread_ok).count();
    if dev_failures > 0 {
        h.deviation.add(dev_failures as u64);
    }
    if spread_failures > 0 {
        h.spread.add(spread_failures as u64);
    }
    if !report.final_proportion_ok {
        h.proportion.inc();
    }
}

/// Self-contained Algorithm 1 over a values vector.
///
/// `values` is the (post-filter) aggregation column of the sample S, in
/// stored order — which, because samples are stored shuffled, makes
/// consecutive chunks valid disjoint subsamples. `ctx` carries the
/// pre-filter sample row count n and population size. Subsample sizes are
/// interpreted in pre-filter rows and mapped to value counts via the
/// sample's selectivity.
pub fn run_diagnostic(
    values: &[f64],
    ctx: &SampleContext,
    theta: &Theta<'_>,
    xi: &dyn ErrorEstimator,
    cfg: &DiagnosticConfig,
    seeds: SeedStream,
) -> DiagnosticReport {
    cfg.validate(ctx.sample_rows).unwrap_or_else(|e| panic!("invalid diagnostic config: {e}"));
    let est = theta.as_estimator();
    let theta_s = est.estimate(values, ctx);
    let selectivity = values.len() as f64 / ctx.sample_rows as f64;

    let mut levels = Vec::with_capacity(cfg.k());
    for (li, &b) in cfg.subsample_rows.iter().enumerate() {
        // m values per subsample ≈ selectivity · b.
        let m = ((b as f64 * selectivity).round() as usize).min(values.len() / cfg.p.max(1));
        let sub_ctx = ctx.subsample(b);
        let mut theta_hats = Vec::with_capacity(cfg.p);
        let mut xi_half_widths = Vec::with_capacity(cfg.p);
        for j in 0..cfg.p {
            let chunk: &[f64] = if m == 0 {
                &[]
            } else {
                let start = j * m;
                &values[start..(start + m).min(values.len())]
            };
            theta_hats.push(est.estimate(chunk, &sub_ctx));
            let mut rng = seeds.derive(li as u64).rng(j as u64);
            let hw = xi
                .confidence_interval(&mut rng, chunk, &sub_ctx, theta, cfg.alpha)
                .map(|ci| ci.half_width)
                .unwrap_or(f64::NAN);
            xi_half_widths.push(hw);
        }
        levels.push(LevelEstimates { b, theta_hats, xi_half_widths });
    }

    evaluate_from_estimates(theta_s, &levels, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_stats::dist::{sample_lognormal, sample_pareto};
    use aqp_stats::error_estimator::EstimationMethod;
    use aqp_stats::estimator::Aggregate;
    use aqp_stats::rng::rng_from_seed;
    use aqp_stats::sampling::{gather, with_replacement_indices};

    fn sample_of(pop: &[f64], n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rng_from_seed(seed);
        let idx = with_replacement_indices(&mut rng, n, pop.len());
        gather(pop, &idx)
    }

    fn cfg_for(n: usize) -> DiagnosticConfig {
        DiagnosticConfig::scaled_to(n, 50)
    }

    #[test]
    fn accepts_bootstrap_avg_on_benign_data() {
        let mut rng = rng_from_seed(1);
        let pop: Vec<f64> =
            (0..500_000).map(|_| sample_lognormal(&mut rng, 1.0, 0.5)).collect();
        let n = 40_000;
        let sample = sample_of(&pop, n, 2);
        let ctx = SampleContext::new(n, pop.len());
        let report = run_diagnostic(
            &sample,
            &ctx,
            &Theta::Builtin(Aggregate::Avg),
            &EstimationMethod::Bootstrap { k: 100 },
            &cfg_for(n),
            SeedStream::new(3),
        );
        assert!(report.accepted, "{report:#?}");
        assert!(report.final_proportion_ok);
        assert_eq!(report.levels.len(), 3);
    }

    #[test]
    fn accepts_closed_form_avg_on_benign_data() {
        let mut rng = rng_from_seed(4);
        let pop: Vec<f64> =
            (0..500_000).map(|_| sample_lognormal(&mut rng, 1.0, 0.5)).collect();
        let n = 40_000;
        let sample = sample_of(&pop, n, 5);
        let ctx = SampleContext::new(n, pop.len());
        let report = run_diagnostic(
            &sample,
            &ctx,
            &Theta::Builtin(Aggregate::Avg),
            &EstimationMethod::ClosedForm,
            &cfg_for(n),
            SeedStream::new(6),
        );
        assert!(report.accepted, "{report:#?}");
    }

    #[test]
    fn rejects_bootstrap_max_on_heavy_tails() {
        // MAX on Pareto(1.1): subsample maxima keep growing with b; the
        // bootstrap's per-subsample intervals can't track the truth.
        let mut rng = rng_from_seed(7);
        let pop: Vec<f64> = (0..500_000).map(|_| sample_pareto(&mut rng, 1.0, 1.1)).collect();
        let n = 40_000;
        let sample = sample_of(&pop, n, 8);
        let ctx = SampleContext::new(n, pop.len());
        let report = run_diagnostic(
            &sample,
            &ctx,
            &Theta::Builtin(Aggregate::Max),
            &EstimationMethod::Bootstrap { k: 100 },
            &cfg_for(n),
            SeedStream::new(9),
        );
        assert!(!report.accepted, "{report:#?}");
    }

    #[test]
    fn kernel_accepts_perfect_estimates() {
        // Synthetic: ξ returns exactly the truth at every level.
        let theta_s = 0.0;
        let spread = |b: usize| 1.0 / (b as f64).sqrt();
        let levels: Vec<LevelEstimates> = [100usize, 200, 400]
            .iter()
            .map(|&b| {
                let s = spread(b);
                // Estimates symmetric around theta_s at ±s: truth x = s.
                let theta_hats: Vec<f64> =
                    (0..20).map(|j| if j % 2 == 0 { s } else { -s }).collect();
                let xi_half_widths = vec![s; 20];
                LevelEstimates { b, theta_hats, xi_half_widths }
            })
            .collect();
        let cfg = DiagnosticConfig {
            p: 20,
            subsample_rows: vec![100, 200, 400],
            ..DiagnosticConfig::fast()
        };
        let r = evaluate_from_estimates(theta_s, &levels, &cfg);
        assert!(r.accepted, "{r:#?}");
        for l in &r.levels {
            assert!(l.mean_deviation < 1e-9);
            assert_eq!(l.close_proportion, 1.0);
        }
    }

    #[test]
    fn kernel_rejects_growing_deviation() {
        // ξ's deviation from truth grows with b and exceeds c1.
        let theta_s = 0.0;
        let levels: Vec<LevelEstimates> = [(100usize, 1.0), (200, 2.0), (400, 4.0)]
            .iter()
            .map(|&(b, factor)| {
                let theta_hats: Vec<f64> =
                    (0..20).map(|j| if j % 2 == 0 { 1.0 } else { -1.0 }).collect();
                // Truth x = 1; ξ reports `factor`, increasingly wrong.
                LevelEstimates { b, theta_hats, xi_half_widths: vec![factor; 20] }
            })
            .collect();
        let cfg = DiagnosticConfig {
            p: 20,
            subsample_rows: vec![100, 200, 400],
            ..DiagnosticConfig::fast()
        };
        let r = evaluate_from_estimates(theta_s, &levels, &cfg);
        assert!(!r.accepted, "{r:#?}");
        assert!(!r.final_proportion_ok);
    }

    #[test]
    fn kernel_rejects_when_final_proportion_low() {
        // Deviation/spread fine on average but half the subsamples are way
        // off at b_k.
        let theta_s = 0.0;
        let theta_hats: Vec<f64> = (0..20).map(|j| if j % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let good = LevelEstimates {
            b: 100,
            theta_hats: theta_hats.clone(),
            xi_half_widths: vec![1.0; 20],
        };
        let mut mixed_widths = vec![1.0; 10];
        mixed_widths.extend(vec![10.0; 10]); // 50% far off
        let bad = LevelEstimates { b: 200, theta_hats, xi_half_widths: mixed_widths };
        let cfg = DiagnosticConfig {
            p: 20,
            subsample_rows: vec![100, 200],
            c1: 10.0, // disable the mean-deviation gate
            c2: 10.0,
            ..DiagnosticConfig::fast()
        };
        let r = evaluate_from_estimates(theta_s, &[good, bad], &cfg);
        assert!(!r.final_proportion_ok);
        assert!(!r.accepted);
    }

    #[test]
    fn degenerate_truth_accepts_zero_error_estimates() {
        // Constant data: every subsample estimate equals θ(S); truth x = 0.
        let levels = vec![LevelEstimates {
            b: 100,
            theta_hats: vec![5.0; 10],
            xi_half_widths: vec![0.0; 10],
        }];
        let cfg =
            DiagnosticConfig { p: 10, subsample_rows: vec![100], ..DiagnosticConfig::fast() };
        let r = evaluate_from_estimates(5.0, &levels, &cfg);
        assert!(r.accepted, "{r:#?}");
    }

    #[test]
    fn nan_estimates_are_degenerate_not_fatal() {
        let levels = vec![LevelEstimates {
            b: 100,
            theta_hats: vec![f64::NAN; 10],
            xi_half_widths: vec![f64::NAN; 10],
        }];
        let cfg =
            DiagnosticConfig { p: 10, subsample_rows: vec![100], ..DiagnosticConfig::fast() };
        let r = evaluate_from_estimates(5.0, &levels, &cfg);
        assert!(!r.accepted);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = rng_from_seed(10);
        let pop: Vec<f64> = (0..100_000).map(|_| sample_lognormal(&mut rng, 0.0, 0.7)).collect();
        let n = 20_000;
        let sample = sample_of(&pop, n, 11);
        let ctx = SampleContext::new(n, pop.len());
        let run = || {
            run_diagnostic(
                &sample,
                &ctx,
                &Theta::Builtin(Aggregate::Sum),
                &EstimationMethod::Bootstrap { k: 50 },
                &cfg_for(n),
                SeedStream::new(12),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(
            a.levels.iter().map(|l| l.x).collect::<Vec<_>>(),
            b.levels.iter().map(|l| l.x).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "invalid diagnostic config")]
    fn invalid_config_panics() {
        let cfg = DiagnosticConfig {
            p: 100,
            subsample_rows: vec![1000],
            ..DiagnosticConfig::fast()
        };
        let ctx = SampleContext::new(100, 1000);
        run_diagnostic(
            &[1.0; 100],
            &ctx,
            &Theta::Builtin(Aggregate::Avg),
            &EstimationMethod::ClosedForm,
            &cfg,
            SeedStream::new(1),
        );
    }
}

//! The "ideal diagnostic" (§4: "we could simply perform the evaluation
//! procedure we used to present results in the previous section") and the
//! Fig. 4 scoring of the real diagnostic against it.
//!
//! The ideal diagnostic repeatedly samples the *full population* and
//! checks whether ξ's intervals match the true interval — prohibitively
//! expensive in production (that is the whole point of the paper), but
//! available here because our populations are synthetic. Comparing the
//! cheap diagnostic's verdict to the ideal verdict yields the false
//! positive / false negative rates of Fig. 4(b)/(c).

use serde::{Deserialize, Serialize};

use aqp_stats::accuracy::{evaluate_error_estimator, AccuracyConfig, AccuracyVerdict};
use aqp_stats::error_estimator::{ErrorEstimator, Theta};
use aqp_stats::estimator::SampleContext;
use aqp_stats::rng::SeedStream;
use aqp_stats::sampling::{gather, with_replacement_indices};

use crate::config::DiagnosticConfig;
use crate::kleiner::run_diagnostic;

/// One cell of the Fig. 4 confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiagnosticOutcome {
    /// Diagnostic accepted and error estimation really works.
    TrueAccept,
    /// Diagnostic rejected and error estimation really fails.
    TrueReject,
    /// Diagnostic accepted but error estimation actually fails — the
    /// dangerous case (user sees bad error bars).
    FalsePositive,
    /// Diagnostic rejected although error estimation works — the wasteful
    /// case (system needlessly falls back).
    FalseNegative,
}

impl DiagnosticOutcome {
    /// Combine the ideal verdict with the diagnostic's decision.
    pub fn from_verdicts(estimation_works: bool, diagnostic_accepted: bool) -> Self {
        match (estimation_works, diagnostic_accepted) {
            (true, true) => DiagnosticOutcome::TrueAccept,
            (false, false) => DiagnosticOutcome::TrueReject,
            (false, true) => DiagnosticOutcome::FalsePositive,
            (true, false) => DiagnosticOutcome::FalseNegative,
        }
    }

    /// Did the diagnostic's decision match the ideal?
    pub fn is_correct(self) -> bool {
        matches!(self, DiagnosticOutcome::TrueAccept | DiagnosticOutcome::TrueReject)
    }
}

/// Full evaluation of the diagnostic for one (θ, ξ, population) triple.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiagnosticEvaluation {
    /// Ideal verdict from the expensive §3-style evaluation.
    pub ideal_verdict: AccuracyVerdict,
    /// The cheap diagnostic's decision on a single sample.
    pub diagnostic_accepted: bool,
    /// The resulting confusion-matrix cell.
    pub outcome: DiagnosticOutcome,
}

/// Run the ideal diagnostic and the real diagnostic for one query and
/// score them against each other.
///
/// `sample_rows` is the sample size n the system would use;
/// `accuracy_cfg` drives the ideal evaluation (its `sample_rows` is
/// overridden by `sample_rows` for consistency).
pub fn evaluate_diagnostic(
    population: &[f64],
    theta: &Theta<'_>,
    xi: &dyn ErrorEstimator,
    sample_rows: usize,
    diag_cfg: &DiagnosticConfig,
    accuracy_cfg: &AccuracyConfig,
    seeds: SeedStream,
) -> DiagnosticEvaluation {
    // 1. Ideal verdict.
    let acc_cfg = AccuracyConfig { sample_rows, ..*accuracy_cfg };
    let ideal = evaluate_error_estimator(population, theta, xi, &acc_cfg, seeds.derive(1));
    let estimation_works = ideal.verdict == AccuracyVerdict::Correct;

    // 2. The cheap diagnostic on one fresh sample.
    let mut rng = seeds.rng(2);
    let idx = with_replacement_indices(&mut rng, sample_rows, population.len());
    let sample = gather(population, &idx);
    let ctx = SampleContext::new(sample_rows, population.len());
    let report = run_diagnostic(&sample, &ctx, theta, xi, diag_cfg, seeds.derive(3));

    DiagnosticEvaluation {
        ideal_verdict: ideal.verdict,
        diagnostic_accepted: report.accepted,
        outcome: DiagnosticOutcome::from_verdicts(estimation_works, report.accepted),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_stats::dist::{sample_lognormal, sample_pareto};
    use aqp_stats::error_estimator::EstimationMethod;
    use aqp_stats::estimator::Aggregate;
    use aqp_stats::rng::rng_from_seed;

    #[test]
    fn outcome_matrix() {
        use DiagnosticOutcome::*;
        assert_eq!(DiagnosticOutcome::from_verdicts(true, true), TrueAccept);
        assert_eq!(DiagnosticOutcome::from_verdicts(false, false), TrueReject);
        assert_eq!(DiagnosticOutcome::from_verdicts(false, true), FalsePositive);
        assert_eq!(DiagnosticOutcome::from_verdicts(true, false), FalseNegative);
        assert!(TrueAccept.is_correct() && TrueReject.is_correct());
        assert!(!FalsePositive.is_correct() && !FalseNegative.is_correct());
    }

    #[test]
    fn diagnostic_agrees_with_ideal_on_benign_avg() {
        let mut rng = rng_from_seed(1);
        let pop: Vec<f64> = (0..150_000).map(|_| sample_lognormal(&mut rng, 1.0, 0.5)).collect();
        // Both sides of this comparison are statistical: the diagnostic has
        // a real false-negative rate (Fig. 4 reports 3–9%), and the ideal
        // verdict is itself a Monte-Carlo estimate whose truth interval
        // needs many draws to stabilize. p = 100 (the paper's setting),
        // K = 200 and 800 truth draws keep the test deterministic-in-practice
        // across seeds.
        let n = 10_000;
        let eval = evaluate_diagnostic(
            &pop,
            &Theta::Builtin(Aggregate::Avg),
            &EstimationMethod::Bootstrap { k: 200 },
            n,
            &DiagnosticConfig::scaled_to(n, 100),
            &AccuracyConfig { runs: 40, truth_runs: 800, ..AccuracyConfig::fast() },
            SeedStream::new(5),
        );
        assert_eq!(eval.outcome, DiagnosticOutcome::TrueAccept, "{eval:?}");
    }

    #[test]
    fn diagnostic_generalizes_to_the_jackknife() {
        // §4.1: "the diagnostic can be applied in principle to any error
        // estimation procedure". The jackknife has a different failure
        // envelope than the bootstrap — consistent for smooth means,
        // inconsistent for extremes — and the diagnostic must track it.
        let mut rng = rng_from_seed(21);
        let pop: Vec<f64> =
            (0..150_000).map(|_| sample_lognormal(&mut rng, 1.0, 0.5)).collect();
        let n = 10_000;
        // Smooth θ: jackknife works; diagnostic should accept.
        let ok = evaluate_diagnostic(
            &pop,
            &Theta::Builtin(Aggregate::Avg),
            &EstimationMethod::Jackknife { g: 100 },
            n,
            &DiagnosticConfig::scaled_to(n, 100),
            // Seed picked where the 40-run ideal coverage estimate lands
            // Correct and the diagnostic's own ~3–9% false-negative rate
            // (Fig. 4) does not fire; both sides are marginal statistics.
            &AccuracyConfig { runs: 40, truth_runs: 400, ..AccuracyConfig::fast() },
            SeedStream::new(30),
        );
        assert_eq!(ok.outcome, DiagnosticOutcome::TrueAccept, "{ok:?}");

        // Extreme θ: jackknife variance collapses; diagnostic must reject.
        let mut rng = rng_from_seed(23);
        let pop: Vec<f64> = (0..150_000).map(|_| sample_pareto(&mut rng, 1.0, 1.3)).collect();
        let bad = evaluate_diagnostic(
            &pop,
            &Theta::Builtin(Aggregate::Max),
            &EstimationMethod::Jackknife { g: 100 },
            n,
            &DiagnosticConfig::scaled_to(n, 100),
            &AccuracyConfig { runs: 40, truth_runs: 400, ..AccuracyConfig::fast() },
            SeedStream::new(24),
        );
        assert_eq!(bad.outcome, DiagnosticOutcome::TrueReject, "{bad:?}");
    }

    #[test]
    fn diagnostic_agrees_with_ideal_on_pathological_max() {
        let mut rng = rng_from_seed(2);
        let pop: Vec<f64> = (0..300_000).map(|_| sample_pareto(&mut rng, 1.0, 1.1)).collect();
        let n = 30_000;
        let eval = evaluate_diagnostic(
            &pop,
            &Theta::Builtin(Aggregate::Max),
            &EstimationMethod::Bootstrap { k: 100 },
            n,
            &DiagnosticConfig::scaled_to(n, 40),
            &AccuracyConfig { runs: 30, truth_runs: 100, ..AccuracyConfig::fast() },
            SeedStream::new(6),
        );
        assert_eq!(eval.outcome, DiagnosticOutcome::TrueReject, "{eval:?}");
    }
}

//! The §5.2 naive baseline executor.
//!
//! Implements error estimation and diagnostics the way the UNION-ALL
//! query rewrite of §5.2 executes them: **every bootstrap subquery
//! re-scans the sample** (re-applying filters and projections), and every
//! diagnostic subsample is extracted by yet another scan. This is the
//! measured baseline that scan consolidation and operator pushdown are
//! compared against in Fig. 7/8.
//!
//! The produced *numbers* are statistically equivalent to the optimized
//! engine's; only the work wasted to produce them differs.

use aqp_diagnostics::kleiner::{evaluate_from_estimates, LevelEstimates};
use aqp_diagnostics::DiagnosticConfig;
use aqp_obs::trace::stage;
use aqp_sql::logical::LogicalPlan;
use aqp_stats::ci::ci_from_draws;
use aqp_stats::estimator::SampleContext;
use aqp_stats::resample::poisson_weights;
use aqp_stats::rng::SeedStream;
use aqp_storage::Table;

use crate::collect::{collect, AggData, NestedData};
use crate::engine::{ApproxOptions, MethodChoice};
use crate::result::{AggResult, ApproxResult, GroupResult, MethodUsed, StageTimings};
use crate::theta::{closed_form_ci_prepared, PreparedTheta};
use crate::udf::UdfRegistry;
use crate::Result;

fn slice_data(data: &AggData, range: std::ops::Range<usize>) -> AggData {
    AggData {
        values: data.values[range.clone()].to_vec(),
        positions: if data.positions.len() == data.values.len() {
            data.positions[range.clone()].to_vec()
        } else {
            Vec::new()
        },
        nested: data
            .nested
            .as_ref()
            .map(|nd| NestedData { codes: nd.codes[range].to_vec(), n_codes: nd.n_codes }),
    }
}

/// Execute approximately with the naive §5.2 strategy: one physical
/// re-scan per bootstrap subquery and per diagnostic subsample.
///
/// Stratified per-group contexts (`opts.group_contexts`) are not
/// supported here — the baseline exists to measure the cost of the §5.2
/// rewrite on uniform samples.
pub fn execute_baseline(
    plan: &LogicalPlan,
    sample: &Table,
    population_rows: usize,
    registry: &UdfRegistry,
    opts: &ApproxOptions,
) -> Result<ApproxResult> {
    let seeds = SeedStream::new(opts.seed);
    let rec = opts.obs.recorder();

    // Phase 1 — the query itself (one scan, same as optimized).
    let scan_span = rec.start(stage::SCAN_COLLECT);
    let collected = collect(plan, sample, opts.threads)?;
    let ctx = SampleContext::new(collected.pre_filter_rows, population_rows);
    let thetas: Vec<PreparedTheta> = collected
        .agg_exprs
        .iter()
        .map(|a| PreparedTheta::prepare(a, collected.inner_agg.as_ref(), registry))
        .collect::<Result<Vec<_>>>()?;
    let estimates: Vec<Vec<f64>> = collected
        .groups
        .iter()
        .map(|g| {
            g.aggs
                .iter()
                .zip(&thetas)
                .map(|(d, t)| t.estimate(d, &ctx))
                .collect()
        })
        .collect();
    rec.end(scan_span);

    // Phase 2 — error estimation via repeated subqueries.
    let err_span = rec.start(stage::ERROR_ESTIMATION);
    let mut cis: Vec<Vec<(Option<aqp_stats::ci::Ci>, MethodUsed)>> = Vec::new();
    for (gi, _group) in collected.groups.iter().enumerate() {
        let mut group_cis = Vec::new();
        for (ai, theta) in thetas.iter().enumerate() {
            let use_cf = match opts.method {
                MethodChoice::Auto => theta.closed_form_applicable(),
                MethodChoice::ClosedForm => true,
                MethodChoice::Bootstrap => false,
            };
            if use_cf {
                // Naive closed form: a second full scan to compute the
                // variance statistics.
                let re = collect(plan, sample, opts.threads)?;
                let data = &re.groups[gi].aggs[ai];
                match closed_form_ci_prepared(theta, data, &ctx, opts.alpha) {
                    Some(ci) => {
                        group_cis.push((Some(ci), MethodUsed::ClosedForm));
                        continue;
                    }
                    None if matches!(opts.method, MethodChoice::ClosedForm) => {
                        group_cis.push((None, MethodUsed::None));
                        continue;
                    }
                    None => {}
                }
            }
            // Naive bootstrap: K subqueries, each a full re-scan of the
            // sample followed by a weighted aggregation.
            let mut rng = seeds.derive(0xBA5E).rng((gi * 64 + ai) as u64);
            aqp_stats::bootstrap::count_resamples(opts.bootstrap_k);
            let mut replicates = Vec::with_capacity(opts.bootstrap_k);
            for _ in 0..opts.bootstrap_k {
                let re = collect(plan, sample, opts.threads)?; // the wasted scan
                let data = &re.groups[gi].aggs[ai];
                let weights = poisson_weights(&mut rng, data.values.len());
                let r = theta.estimate_weighted_range(data, &weights, 0..data.values.len(), &ctx);
                if !r.is_nan() {
                    replicates.push(r);
                }
            }
            let center = estimates[gi][ai];
            if replicates.is_empty() || center.is_nan() {
                group_cis.push((None, MethodUsed::None));
            } else {
                group_cis.push((
                    Some(ci_from_draws(center, &replicates, opts.alpha)),
                    MethodUsed::Bootstrap,
                ));
            }
        }
        cis.push(group_cis);
    }
    rec.end(err_span);

    // Phase 3 — diagnostics via subqueries: every subsample is extracted
    // by a fresh scan, and (for the bootstrap) resampled K times.
    let diag_span = rec.start(stage::DIAGNOSTICS);
    let mut diags: Vec<Vec<Option<aqp_diagnostics::DiagnosticReport>>> = Vec::new();
    if let Some(cfg) = &opts.diagnostic {
        for (gi, _group) in collected.groups.iter().enumerate() {
            let mut group_diags = Vec::new();
            for (ai, theta) in thetas.iter().enumerate() {
                let report = naive_diagnostic(
                    plan, sample, gi, ai, theta, &collected.groups[gi].aggs[ai], &ctx, cfg, opts,
                    seeds.derive(0xD1A6).derive((gi * 64 + ai) as u64),
                )?;
                group_diags.push(Some(report));
            }
            diags.push(group_diags);
        }
    } else {
        diags = collected
            .groups
            .iter()
            .map(|g| vec![None; g.aggs.len()])
            .collect();
    }
    rec.end(diag_span);

    let asm_span = rec.start(stage::ASSEMBLE);
    let groups = collected
        .groups
        .iter()
        .enumerate()
        .map(|(gi, g)| GroupResult {
            key: g.key.clone(),
            aggs: (0..g.aggs.len())
                .map(|ai| AggResult {
                    name: collected
                        .agg_exprs
                        .get(ai)
                        .map(|a| a.to_string())
                        .unwrap_or_else(|| format!("agg{ai}")),
                    estimate: estimates[gi][ai],
                    ci: cis[gi][ai].0,
                    method: cis[gi][ai].1,
                    diagnostic: diags[gi][ai].clone(),
                })
                .collect(),
        })
        .collect();
    rec.end(asm_span);

    let trace = rec.finish();
    Ok(ApproxResult {
        groups,
        sample_rows: collected.pre_filter_rows,
        population_rows,
        timings: StageTimings::from_trace(&trace),
        trace,
        degraded: None,
    })
}

#[allow(clippy::too_many_arguments)]
fn naive_diagnostic(
    plan: &LogicalPlan,
    sample: &Table,
    gi: usize,
    ai: usize,
    theta: &PreparedTheta,
    data: &AggData,
    ctx: &SampleContext,
    cfg: &DiagnosticConfig,
    opts: &ApproxOptions,
    seeds: SeedStream,
) -> Result<aqp_diagnostics::DiagnosticReport> {
    let theta_s = theta.estimate(data, ctx);
    let mut levels = Vec::with_capacity(cfg.subsample_rows.len());
    for (li, &b) in cfg.subsample_rows.iter().enumerate() {
        let sub_ctx = ctx.subsample(b);
        let level_seeds = seeds.derive(li as u64);
        let mut theta_hats = Vec::with_capacity(cfg.p);
        let mut xi_half_widths = Vec::with_capacity(cfg.p);
        for j in 0..cfg.p {
            // The naive plan re-scans the sample to materialize each
            // subsample.
            let re = collect(plan, sample, opts.threads)?;
            let fresh = &re.groups[gi].aggs[ai];
            let range = fresh.range_for_rows(j * b, (j + 1) * b, ctx.sample_rows);
            let chunk = slice_data(fresh, range);
            theta_hats.push(theta.estimate(&chunk, &sub_ctx));

            let use_cf = match opts.method {
                MethodChoice::Auto => theta.closed_form_applicable(),
                MethodChoice::ClosedForm => true,
                MethodChoice::Bootstrap => false,
            };
            let hw = if use_cf {
                closed_form_ci_prepared(theta, &chunk, &sub_ctx, opts.alpha)
                    .map(|ci| ci.half_width)
                    .unwrap_or(f64::NAN)
            } else {
                // K resample subqueries over the subsample.
                let mut rng = level_seeds.rng(j as u64);
                let center = theta.estimate(&chunk, &sub_ctx);
                aqp_stats::bootstrap::count_resamples(opts.bootstrap_k);
                let mut reps = Vec::with_capacity(opts.bootstrap_k);
                for _ in 0..opts.bootstrap_k {
                    let weights = poisson_weights(&mut rng, chunk.values.len());
                    let r = theta.estimate_weighted_range(
                        &chunk,
                        &weights,
                        0..chunk.values.len(),
                        &sub_ctx,
                    );
                    if !r.is_nan() {
                        reps.push(r);
                    }
                }
                if reps.is_empty() || center.is_nan() {
                    f64::NAN
                } else {
                    ci_from_draws(center, &reps, opts.alpha).half_width
                }
            };
            xi_half_widths.push(hw);
        }
        levels.push(LevelEstimates { b, theta_hats, xi_half_widths });
    }
    Ok(evaluate_from_estimates(theta_s, &levels, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::execute_approx;
    use aqp_sql::{parse_query, plan_query};
    use aqp_stats::dist::sample_lognormal;
    use aqp_stats::rng::rng_from_seed;
    use aqp_stats::sampling::with_replacement_indices;
    use aqp_storage::{Batch, Column, DataType, Field, Schema};

    fn tiny_setup(rows: usize, n: usize) -> (Table, Table, LogicalPlan, UdfRegistry) {
        let mut rng = rng_from_seed(1);
        let time: Vec<f64> = (0..rows).map(|_| sample_lognormal(&mut rng, 1.0, 0.5)).collect();
        let schema = Schema::new(vec![Field::new("time", DataType::Float)]).unwrap();
        let batch = Batch::new(schema, vec![Column::from_f64s(time)]).unwrap();
        let pop = Table::from_batch("t", batch, 2).unwrap();
        let idx = with_replacement_indices(&mut rng, n, rows);
        let sbatch = pop.to_batch().unwrap().gather(&idx).unwrap();
        let sample = Table::from_batch("t_sample", sbatch, 2).unwrap();
        let q = parse_query("SELECT AVG(time) FROM t").unwrap();
        let plan = plan_query(&q, pop.schema()).unwrap();
        (pop, sample, plan, UdfRegistry::default())
    }

    #[test]
    fn baseline_and_optimized_agree_statistically() {
        let (pop, sample, plan, reg) = tiny_setup(20_000, 2_000);
        let opts = ApproxOptions {
            seed: 2,
            method: MethodChoice::Bootstrap,
            bootstrap_k: 60,
            threads: 1,
            ..Default::default()
        };
        let base = execute_baseline(&plan, &sample, pop.num_rows(), &reg, &opts).unwrap();
        let fast = execute_approx(&plan, &sample, pop.num_rows(), &reg, &opts).unwrap();
        let (b, f) = (base.scalar().unwrap(), fast.scalar().unwrap());
        assert_eq!(b.estimate, f.estimate);
        let (bh, fh) = (b.ci.unwrap().half_width, f.ci.unwrap().half_width);
        assert!(
            (bh - fh).abs() / fh < 0.5,
            "baseline hw {bh} vs optimized hw {fh}"
        );
    }

    #[test]
    fn baseline_is_slower_for_bootstrap() {
        let (pop, sample, plan, reg) = tiny_setup(20_000, 4_000);
        let opts = ApproxOptions {
            seed: 3,
            method: MethodChoice::Bootstrap,
            bootstrap_k: 40,
            threads: 1,
            ..Default::default()
        };
        let base = execute_baseline(&plan, &sample, pop.num_rows(), &reg, &opts).unwrap();
        let fast = execute_approx(&plan, &sample, pop.num_rows(), &reg, &opts).unwrap();
        // The naive path re-scans the sample K times; it must be
        // substantially slower than the single-scan path.
        assert!(
            base.timings.error_estimation() > fast.timings.error_estimation() * 3,
            "baseline {:?} vs optimized {:?}",
            base.timings.error_estimation(),
            fast.timings.error_estimation()
        );
    }

    #[test]
    fn baseline_diagnostic_runs_and_agrees() {
        let (pop, sample, plan, reg) = tiny_setup(20_000, 3_000);
        let cfg = DiagnosticConfig::scaled_to(3_000, 10);
        let opts = ApproxOptions {
            seed: 4,
            method: MethodChoice::ClosedForm,
            diagnostic: Some(cfg),
            threads: 1,
            ..Default::default()
        };
        let base = execute_baseline(&plan, &sample, pop.num_rows(), &reg, &opts).unwrap();
        let fast = execute_approx(&plan, &sample, pop.num_rows(), &reg, &opts).unwrap();
        let bd = base.scalar().unwrap().diagnostic.clone().unwrap();
        let fd = fast.scalar().unwrap().diagnostic.clone().unwrap();
        assert_eq!(bd.accepted, fd.accepted);
        assert!(base.timings.diagnostics() >= fast.timings.diagnostics());
    }
}

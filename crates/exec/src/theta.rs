//! Prepared query estimators θ at the execution level.
//!
//! Extends the stats-level estimators with the query shapes of QSet-2:
//! aggregate UDFs (resolved through the [`crate::udf::UdfRegistry`]) and
//! nested two-level aggregates (`AVG(s)` over `SUM(x) GROUP BY k`), both
//! evaluated either plainly or on a Poissonized resample encoded as
//! per-row weights.
//!
//! For nested aggregates, the resample happens at the level of *base
//! rows* (they are the sampling units): a resample re-weights each base
//! row, inner groups with zero total weight vanish from the resample, and
//! the outer aggregate runs over the surviving groups' inner values. The
//! outer aggregate is unscaled (AVG/MIN/MAX-like semantics); scaling an
//! outer SUM would require distinct-group-count estimation, which is out
//! of scope and rejected at preparation time.

use std::sync::Arc;

use aqp_sql::ast::{AggExpr, AggFunc};
use aqp_stats::bootstrap::bootstrap_ci;
use aqp_stats::ci::{ci_from_draws, Ci};
use aqp_stats::closed_form::closed_form_ci;
use aqp_stats::dist::Poisson1;
use aqp_stats::estimator::{Aggregate, QueryEstimator, SampleContext, Udf};
use aqp_stats::rng::Rng;

use crate::collect::AggData;
use crate::udf::UdfRegistry;
use crate::{ExecError, Result};

/// A single-level aggregate: built-in or UDF.
#[derive(Debug, Clone)]
pub enum PlainTheta {
    /// A built-in SQL aggregate.
    Builtin(Aggregate),
    /// A registry-resolved aggregate UDF.
    Udf(Arc<Udf>),
}

impl PlainTheta {
    /// Evaluate on plain values.
    pub fn estimate(&self, values: &[f64], ctx: &SampleContext) -> f64 {
        match self {
            PlainTheta::Builtin(a) => a.estimate(values, ctx),
            PlainTheta::Udf(u) => u.estimate(values, ctx),
        }
    }

    /// Evaluate on a weighted resample.
    pub fn estimate_weighted(&self, values: &[f64], weights: &[u32], ctx: &SampleContext) -> f64 {
        match self {
            PlainTheta::Builtin(a) => a.estimate_weighted(values, weights, ctx),
            PlainTheta::Udf(u) => u.estimate_weighted(values, weights, ctx),
        }
    }

    /// The built-in aggregate, if this is one (for closed forms).
    pub fn builtin(&self) -> Option<Aggregate> {
        match self {
            PlainTheta::Builtin(a) => Some(*a),
            PlainTheta::Udf(_) => None,
        }
    }

    /// Name for reports.
    pub fn name(&self) -> String {
        match self {
            PlainTheta::Builtin(a) => a.name(),
            PlainTheta::Udf(u) => u.name(),
        }
    }
}

/// Map a SQL aggregate function to the stats-level estimator.
pub fn builtin_of(func: &AggFunc) -> Option<Aggregate> {
    Some(match func {
        AggFunc::Avg => Aggregate::Avg,
        AggFunc::Sum => Aggregate::Sum,
        AggFunc::Count => Aggregate::Count,
        AggFunc::Min => Aggregate::Min,
        AggFunc::Max => Aggregate::Max,
        AggFunc::Variance => Aggregate::Variance,
        AggFunc::StdDev => Aggregate::StdDev,
        AggFunc::Percentile(q) => Aggregate::Percentile(*q),
        AggFunc::Udf(_) => return None,
    })
}

/// The inner aggregates supported in nested queries — the subset of
/// [`Aggregate`] with a per-group evaluation that is stable under
/// row-level resampling. The only constructor is fallible and private to
/// [`PreparedTheta::prepare`], so unsupported inner aggregates are
/// unrepresentable downstream (no `unreachable!` arms needed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InnerAggregate {
    /// Per-group scaled sum.
    Sum,
    /// Per-group scaled row count.
    Count,
    /// Per-group mean (scale-free).
    Avg,
    /// Per-group minimum.
    Min,
    /// Per-group maximum.
    Max,
}

impl InnerAggregate {
    /// The supported subset; `None` for Variance/StdDev/Percentile, whose
    /// per-group values are not resample-stable.
    fn from_builtin(a: Aggregate) -> Option<Self> {
        match a {
            Aggregate::Sum => Some(InnerAggregate::Sum),
            Aggregate::Count => Some(InnerAggregate::Count),
            Aggregate::Avg => Some(InnerAggregate::Avg),
            Aggregate::Min => Some(InnerAggregate::Min),
            Aggregate::Max => Some(InnerAggregate::Max),
            Aggregate::Variance | Aggregate::StdDev | Aggregate::Percentile(_) => None,
        }
    }
}

/// A fully-prepared θ for one SELECT aggregate.
#[derive(Debug, Clone)]
pub struct PreparedTheta {
    /// The top-level (or only) aggregate.
    pub outer: PlainTheta,
    /// For nested plans, the inner aggregate.
    pub inner: Option<InnerAggregate>,
}

impl PreparedTheta {
    /// Prepare from SQL aggregate expressions.
    pub fn prepare(
        outer: &AggExpr,
        inner: Option<&AggExpr>,
        registry: &UdfRegistry,
    ) -> Result<Self> {
        let outer_theta = match &outer.func {
            AggFunc::Udf(name) => PlainTheta::Udf(registry.resolve(name)?),
            f => PlainTheta::Builtin(builtin_of(f).expect("non-UDF maps to builtin")),
        };
        let inner_theta = match inner {
            None => None,
            Some(a) => {
                let b = builtin_of(&a.func).ok_or_else(|| {
                    ExecError::Unsupported("UDF as the inner aggregate of a nested query".into())
                })?;
                let b = InnerAggregate::from_builtin(b).ok_or_else(|| {
                    ExecError::Unsupported(format!(
                        "inner aggregate {} not supported in nested queries",
                        b.name()
                    ))
                })?;
                if matches!(outer_theta, PlainTheta::Builtin(Aggregate::Sum | Aggregate::Count)) {
                    return Err(ExecError::Unsupported(
                        "outer SUM/COUNT over a nested block needs group-count scaling, \
                         which is unsupported; use AVG/MIN/MAX/percentile"
                            .into(),
                    ));
                }
                Some(b)
            }
        };
        Ok(PreparedTheta { outer: outer_theta, inner: inner_theta })
    }

    /// Whether closed-form error estimation applies (single-level builtin
    /// with a known closed form, §2.3.2).
    pub fn closed_form_applicable(&self) -> bool {
        self.inner.is_none()
            && self.outer.builtin().map(|a| a.closed_form_applicable()).unwrap_or(false)
    }

    /// Point estimate over collected data (full range).
    pub fn estimate(&self, data: &AggData, ctx: &SampleContext) -> f64 {
        self.estimate_range(data, 0..data.values.len(), ctx)
    }

    /// Point estimate over a contiguous sub-range of the collected data —
    /// used by the diagnostic's disjoint subsamples.
    pub fn estimate_range(
        &self,
        data: &AggData,
        range: std::ops::Range<usize>,
        ctx: &SampleContext,
    ) -> f64 {
        let values = &data.values[range.clone()];
        match (&self.inner, &data.nested) {
            (Some(inner), Some(nd)) => {
                let codes = &nd.codes[range];
                let group_vals = inner_group_values(values, codes, nd.n_codes, None, *inner, ctx);
                self.outer.estimate(&group_vals, &SampleContext::population(group_vals.len()))
            }
            _ => self.outer.estimate(values, ctx),
        }
    }

    /// Weighted (resample) estimate over a contiguous sub-range.
    pub fn estimate_weighted_range(
        &self,
        data: &AggData,
        weights: &[u32],
        range: std::ops::Range<usize>,
        ctx: &SampleContext,
    ) -> f64 {
        let values = &data.values[range.clone()];
        debug_assert_eq!(values.len(), weights.len());
        match (&self.inner, &data.nested) {
            (Some(inner), Some(nd)) => {
                let codes = &nd.codes[range];
                let group_vals =
                    inner_group_values(values, codes, nd.n_codes, Some(weights), *inner, ctx);
                self.outer.estimate(&group_vals, &SampleContext::population(group_vals.len()))
            }
            _ => self.outer.estimate_weighted(values, weights, ctx),
        }
    }
}

/// Compute the inner aggregate per group over (optionally weighted) rows,
/// returning the values of groups present in the resample.
fn inner_group_values(
    values: &[f64],
    codes: &[u32],
    n_codes: usize,
    weights: Option<&[u32]>,
    inner: InnerAggregate,
    ctx: &SampleContext,
) -> Vec<f64> {
    debug_assert_eq!(values.len(), codes.len());
    let scale = ctx.scale();
    match inner {
        InnerAggregate::Sum | InnerAggregate::Count => {
            let mut sums = vec![0.0f64; n_codes];
            let mut present = vec![false; n_codes];
            for i in 0..values.len() {
                let w = weights.map_or(1, |ws| ws[i]);
                if w == 0 {
                    continue;
                }
                let g = codes[i] as usize;
                let contrib = if matches!(inner, InnerAggregate::Count) {
                    w as f64
                } else {
                    values[i] * w as f64
                };
                sums[g] += contrib;
                present[g] = true;
            }
            (0..n_codes)
                .filter(|&g| present[g])
                .map(|g| sums[g] * scale)
                .collect()
        }
        InnerAggregate::Avg => {
            let mut sums = vec![0.0f64; n_codes];
            let mut wsum = vec![0u64; n_codes];
            for i in 0..values.len() {
                let w = weights.map_or(1, |ws| ws[i]);
                if w == 0 {
                    continue;
                }
                let g = codes[i] as usize;
                sums[g] += values[i] * w as f64;
                wsum[g] += w as u64;
            }
            (0..n_codes)
                .filter(|&g| wsum[g] > 0)
                .map(|g| sums[g] / wsum[g] as f64)
                .collect()
        }
        InnerAggregate::Min | InnerAggregate::Max => {
            let init = if matches!(inner, InnerAggregate::Min) {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            };
            let mut acc = vec![init; n_codes];
            let mut present = vec![false; n_codes];
            for i in 0..values.len() {
                let w = weights.map_or(1, |ws| ws[i]);
                if w == 0 {
                    continue;
                }
                let g = codes[i] as usize;
                acc[g] = if matches!(inner, InnerAggregate::Min) {
                    acc[g].min(values[i])
                } else {
                    acc[g].max(values[i])
                };
                present[g] = true;
            }
            (0..n_codes).filter(|&g| present[g]).map(|g| acc[g]).collect()
        }
    }
}

/// Bootstrap CI for a prepared θ over collected data.
///
/// For single-level aggregates this delegates to the stats-level
/// Poissonized bootstrap; for nested data it generates per-replicate
/// weight vectors and evaluates the two-level estimator.
pub fn bootstrap_ci_prepared(
    rng: &mut Rng,
    theta: &PreparedTheta,
    data: &AggData,
    ctx: &SampleContext,
    k: usize,
    alpha: f64,
) -> Option<Ci> {
    match (&theta.inner, &data.nested) {
        (Some(_), Some(_)) => {
            let center = theta.estimate(data, ctx);
            if center.is_nan() {
                return None;
            }
            aqp_stats::bootstrap::count_resamples(k);
            let p1 = Poisson1::new();
            let mut weights = vec![0u32; data.values.len()];
            let replicates: Vec<f64> = (0..k)
                .map(|_| {
                    p1.fill(rng, &mut weights);
                    theta.estimate_weighted_range(data, &weights, 0..data.values.len(), ctx)
                })
                .filter(|r| !r.is_nan())
                .collect();
            if replicates.is_empty() {
                return None;
            }
            Some(ci_from_draws(center, &replicates, alpha))
        }
        _ => {
            // Single-level path: use the shared bootstrap.
            struct Shim<'a>(&'a PlainTheta);
            impl QueryEstimator for Shim<'_> {
                fn name(&self) -> String {
                    self.0.name()
                }
                fn estimate(&self, values: &[f64], ctx: &SampleContext) -> f64 {
                    self.0.estimate(values, ctx)
                }
                fn estimate_weighted(
                    &self,
                    values: &[f64],
                    weights: &[u32],
                    ctx: &SampleContext,
                ) -> f64 {
                    self.0.estimate_weighted(values, weights, ctx)
                }
            }
            bootstrap_ci(rng, &data.values, ctx, &Shim(&theta.outer), k, alpha)
        }
    }
}

/// Closed-form CI for a prepared θ, or `None` when not applicable.
pub fn closed_form_ci_prepared(
    theta: &PreparedTheta,
    data: &AggData,
    ctx: &SampleContext,
    alpha: f64,
) -> Option<Ci> {
    if !theta.closed_form_applicable() {
        return None;
    }
    let agg = theta.outer.builtin()?;
    closed_form_ci(&agg, &data.values, ctx, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::NestedData;
    use aqp_sql::ast::Expr as E;
    use aqp_stats::rng::rng_from_seed;

    fn agg(func: AggFunc) -> AggExpr {
        AggExpr { func, arg: Some(E::col("x")) }
    }

    fn reg() -> UdfRegistry {
        UdfRegistry::default()
    }

    #[test]
    fn prepare_builtin_and_udf() {
        let t = PreparedTheta::prepare(&agg(AggFunc::Avg), None, &reg()).unwrap();
        assert!(t.closed_form_applicable());
        let t = PreparedTheta::prepare(&agg(AggFunc::Udf("geo_mean".into())), None, &reg())
            .unwrap();
        assert!(!t.closed_form_applicable());
        assert!(PreparedTheta::prepare(&agg(AggFunc::Udf("nope".into())), None, &reg()).is_err());
    }

    #[test]
    fn nested_preparation_rules() {
        // AVG over SUM: fine.
        assert!(PreparedTheta::prepare(&agg(AggFunc::Avg), Some(&agg(AggFunc::Sum)), &reg())
            .is_ok());
        // SUM over SUM: needs group-count scaling, rejected.
        assert!(PreparedTheta::prepare(&agg(AggFunc::Sum), Some(&agg(AggFunc::Sum)), &reg())
            .is_err());
        // Inner percentile: rejected.
        assert!(PreparedTheta::prepare(
            &agg(AggFunc::Avg),
            Some(&agg(AggFunc::Percentile(0.5))),
            &reg()
        )
        .is_err());
        // Inner UDF: rejected.
        assert!(PreparedTheta::prepare(
            &agg(AggFunc::Avg),
            Some(&agg(AggFunc::Udf("geo_mean".into()))),
            &reg()
        )
        .is_err());
    }

    #[test]
    fn nested_estimate_matches_manual_computation() {
        // Rows: (code 0: 1, 2), (code 1: 3), (code 2: 4, 5).
        let data = AggData {
            values: vec![1.0, 2.0, 3.0, 4.0, 5.0],
            positions: Vec::new(),
            nested: Some(NestedData { codes: vec![0, 0, 1, 2, 2], n_codes: 3 }),
        };
        let ctx = SampleContext::population(5);
        let theta =
            PreparedTheta::prepare(&agg(AggFunc::Avg), Some(&agg(AggFunc::Sum)), &reg()).unwrap();
        // Inner sums: [3, 3, 9]; outer AVG = 5.
        assert!((theta.estimate(&data, &ctx) - 5.0).abs() < 1e-12);

        let theta =
            PreparedTheta::prepare(&agg(AggFunc::Max), Some(&agg(AggFunc::Avg)), &reg()).unwrap();
        // Inner avgs: [1.5, 3, 4.5]; outer MAX = 4.5.
        assert!((theta.estimate(&data, &ctx) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn nested_weighted_drops_empty_groups() {
        let data = AggData {
            values: vec![1.0, 2.0, 3.0, 4.0, 5.0],
            positions: Vec::new(),
            nested: Some(NestedData { codes: vec![0, 0, 1, 2, 2], n_codes: 3 }),
        };
        let ctx = SampleContext::population(5);
        let theta =
            PreparedTheta::prepare(&agg(AggFunc::Avg), Some(&agg(AggFunc::Sum)), &reg()).unwrap();
        // Weights kill group 1 entirely: inner sums [1+2·2, —, 4] = [5, 4].
        let weights = [1u32, 2, 0, 1, 0];
        let v = theta.estimate_weighted_range(&data, &weights, 0..5, &ctx);
        assert!((v - 4.5).abs() < 1e-12, "{v}");
    }

    #[test]
    fn nested_inner_sum_scales_with_sample_context() {
        let data = AggData {
            values: vec![10.0, 20.0],
            positions: Vec::new(),
            nested: Some(NestedData { codes: vec![0, 1], n_codes: 2 }),
        };
        // Sample of 2 rows from a population of 20: inner sums scale ×10.
        let ctx = SampleContext::new(2, 20);
        let theta =
            PreparedTheta::prepare(&agg(AggFunc::Avg), Some(&agg(AggFunc::Sum)), &reg()).unwrap();
        assert!((theta.estimate(&data, &ctx) - 150.0).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_ci_on_nested_theta() {
        // 200 groups of 5 rows each.
        let mut values = Vec::new();
        let mut codes = Vec::new();
        for g in 0..200u32 {
            for j in 0..5 {
                values.push((g % 17) as f64 + j as f64 * 0.1);
                codes.push(g);
            }
        }
        let data = AggData { values, positions: Vec::new(), nested: Some(NestedData { codes, n_codes: 200 }) };
        let ctx = SampleContext::new(1000, 100_000);
        let theta =
            PreparedTheta::prepare(&agg(AggFunc::Avg), Some(&agg(AggFunc::Sum)), &reg()).unwrap();
        let mut rng = rng_from_seed(1);
        let ci = bootstrap_ci_prepared(&mut rng, &theta, &data, &ctx, 100, 0.95).unwrap();
        assert!(ci.half_width > 0.0);
        let direct = theta.estimate(&data, &ctx);
        assert_eq!(ci.center, direct);
    }

    #[test]
    fn closed_form_only_for_applicable() {
        let data = AggData { values: (0..100).map(|i| i as f64).collect(), positions: Vec::new(), nested: None };
        let ctx = SampleContext::new(100, 1000);
        let avg = PreparedTheta::prepare(&agg(AggFunc::Avg), None, &reg()).unwrap();
        assert!(closed_form_ci_prepared(&avg, &data, &ctx, 0.95).is_some());
        let max = PreparedTheta::prepare(&agg(AggFunc::Max), None, &reg()).unwrap();
        assert!(closed_form_ci_prepared(&max, &data, &ctx, 0.95).is_none());
    }
}

//! Small scoped-thread parallelism helpers.
//!
//! The paper's §6.1 point — that the right degree of parallelism is
//! bounded — is modeled in `aqp-cluster`; here we simply use the local
//! machine's cores for partition- and replicate-parallel work.

use std::time::Duration;

use aqp_obs::Clock;

/// Map `f` over `items` using up to `threads` worker threads, preserving
/// input order in the output.
///
/// `threads == 1` (or a single item) degrades to a plain sequential map,
/// avoiding thread-spawn overhead on small inputs. Items are split into
/// contiguous chunks, one chunk per worker — the right shape for our
/// workloads, where per-item cost is uniform (partitions of equal size,
/// bootstrap replicates of equal cost).
pub fn parallel_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    parallel_map_observed(items, threads, &Clock::Real, f).0
}

/// Per-worker statistics from one [`parallel_map_observed`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStat {
    /// Worker index (chunk index).
    pub worker: usize,
    /// Items this worker processed.
    pub items: usize,
    /// Busy wall-clock time on the given clock.
    pub busy: Duration,
}

/// Like [`parallel_map`], but also measures each worker's busy time on
/// `clock` — the raw material for straggler detection (paper §5.4
/// applied to the in-process pool). The sequential fast path reports a
/// single worker.
pub fn parallel_map_observed<T, U, F>(
    items: Vec<T>,
    threads: usize,
    clock: &Clock,
    f: F,
) -> (Vec<U>, Vec<WorkerStat>)
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        let start = clock.now();
        let out: Vec<U> = items.into_iter().map(f).collect();
        let busy = clock.now().duration_since(start);
        return (out, vec![WorkerStat { worker: 0, items: n, busy }]);
    }
    let threads = threads.min(n);
    let chunk_size = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk_size).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f_ref = &f;
    let per_worker: Vec<(Vec<U>, WorkerStat)> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(w, c)| {
                let clock = clock.clone();
                scope.spawn(move || {
                    let start = clock.now();
                    let items = c.len();
                    let out: Vec<U> = c.into_iter().map(f_ref).collect();
                    let busy = clock.now().duration_since(start);
                    (out, WorkerStat { worker: w, items, busy })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    let mut stats = Vec::with_capacity(per_worker.len());
    for (chunk_out, stat) in per_worker {
        out.extend(chunk_out);
        stats.push(stat);
    }
    (out, stats)
}

/// A sensible default worker count: the machine's logical cores, capped.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), 8, |i: i32| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback() {
        let out = parallel_map(vec![1, 2, 3], 1, |i: i32| i + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![5], 16, |i: i32| i * i);
        assert_eq!(out, vec![25]);
    }

    #[test]
    fn uneven_chunks() {
        let out = parallel_map((0..7).collect(), 3, |i: i32| i - 1);
        assert_eq!(out, (0..7).map(|i| i - 1).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        parallel_map(vec![1, 2, 3], 2, |i: i32| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn default_threads_reasonable() {
        let t = default_threads();
        assert!((1..=16).contains(&t));
    }

    #[test]
    fn observed_reports_one_stat_per_worker() {
        let (out, stats) = parallel_map_observed((0..20).collect(), 4, &Clock::Real, |i: i32| i);
        assert_eq!(out, (0..20).collect::<Vec<_>>());
        assert_eq!(stats.len(), 4);
        assert_eq!(stats.iter().map(|s| s.items).sum::<usize>(), 20);
        for (w, s) in stats.iter().enumerate() {
            assert_eq!(s.worker, w);
        }
    }

    #[test]
    fn observed_sequential_path_reports_single_worker() {
        let (out, stats) = parallel_map_observed(vec![7], 8, &Clock::Real, |i: i32| i * 3);
        assert_eq!(out, vec![21]);
        assert_eq!(stats, vec![WorkerStat { worker: 0, items: 1, busy: stats[0].busy }]);
    }

    #[test]
    fn observed_worker_counters_increment_concurrently() {
        // Workers hammer a shared metrics counter from inside the pool;
        // the count must be lossless.
        let reg = aqp_obs::MetricsRegistry::new();
        let c = reg.counter("aqp.exec.test_hits");
        let (_, stats) = parallel_map_observed((0..1_000).collect(), 8, &Clock::Real, |_: i32| {
            c.inc();
        });
        assert_eq!(c.get(), 1_000);
        assert!(stats.len() > 1);
    }
}

//! Small scoped-thread parallelism helpers.
//!
//! The paper's §6.1 point — that the right degree of parallelism is
//! bounded — is modeled in `aqp-cluster`; here we simply use the local
//! machine's cores for partition- and replicate-parallel work.

/// Map `f` over `items` using up to `threads` worker threads, preserving
/// input order in the output.
///
/// `threads == 1` (or a single item) degrades to a plain sequential map,
/// avoiding thread-spawn overhead on small inputs. Items are split into
/// contiguous chunks, one chunk per worker — the right shape for our
/// workloads, where per-item cost is uniform (partitions of equal size,
/// bootstrap replicates of equal cost).
pub fn parallel_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let threads = threads.min(n);
    let chunk_size = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk_size).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f_ref = &f;
    let results: Vec<Vec<U>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f_ref).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    });
    results.into_iter().flatten().collect()
}

/// A sensible default worker count: the machine's logical cores, capped.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), 8, |i: i32| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback() {
        let out = parallel_map(vec![1, 2, 3], 1, |i: i32| i + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![5], 16, |i: i32| i * i);
        assert_eq!(out, vec![25]);
    }

    #[test]
    fn uneven_chunks() {
        let out = parallel_map((0..7).collect(), 3, |i: i32| i - 1);
        assert_eq!(out, (0..7).map(|i| i - 1).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        parallel_map(vec![1, 2, 3], 2, |i: i32| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn default_threads_reasonable() {
        let t = default_threads();
        assert!((1..=16).contains(&t));
    }
}

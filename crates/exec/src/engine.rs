//! The optimized executor: one scan → answer + error + diagnostic.
//!
//! This is the end state of §5/§6: the collected aggregation inputs are
//! produced by a single (parallel) pass over the sample's partitions, and
//! then *reused* by the point estimate, all bootstrap replicates, and all
//! diagnostic subsamples — no repeated scans, no tuple duplication.

use std::ops::Range;

use aqp_diagnostics::kleiner::{evaluate_from_estimates, LevelEstimates};
use aqp_diagnostics::DiagnosticConfig;
use aqp_faults::{DegradedInfo, EventKind, FaultConfig, FaultInjector, ScanFaultSummary};
use aqp_obs::trace::stage;
use aqp_obs::{count_stragglers, name, Clock, ObsHandle, SpanId, Timestamp, TraceRecorder};
use aqp_sql::logical::LogicalPlan;
use aqp_stats::estimator::SampleContext;
use aqp_stats::rng::SeedStream;
use aqp_storage::Table;

use crate::collect::{collect_observed, collect_observed_faulty, AggData, Collected, OpStats};
use crate::parallel::{default_threads, parallel_map_observed, WorkerStat};
use crate::result::{AggResult, ApproxResult, ExactResult, GroupResult, MethodUsed, StageTimings};
use crate::theta::{bootstrap_ci_prepared, closed_form_ci_prepared, PreparedTheta};
use crate::udf::UdfRegistry;
use crate::Result;

/// How the executor picks the error-estimation technique.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodChoice {
    /// Closed form when applicable, bootstrap otherwise (the system
    /// default: closed forms are strictly cheaper when they exist).
    Auto,
    /// Force the bootstrap.
    Bootstrap,
    /// Closed form only; aggregates without one get no interval.
    ClosedForm,
}

/// Options for approximate execution.
#[derive(Debug, Clone)]
pub struct ApproxOptions {
    /// Technique selection.
    pub method: MethodChoice,
    /// Bootstrap resample count K.
    pub bootstrap_k: usize,
    /// Interval coverage α.
    pub alpha: f64,
    /// Run the diagnostic with this configuration (`None` = skip). The
    /// config's subsample sizes are interpreted against the sample's
    /// pre-filter row count.
    pub diagnostic: Option<DiagnosticConfig>,
    /// Root seed for all Poisson weight streams.
    pub seed: u64,
    /// Worker threads for the scan and the replicate loops.
    pub threads: usize,
    /// Per-group (sample_rows, population_rows) overrides for stratified
    /// samples: each stratum is a uniform sample of its own stratum
    /// population with its own rate, so estimates/intervals/diagnostics
    /// for group `key` must scale by its stratum sizes, not the sample's.
    pub group_contexts: Option<std::collections::HashMap<String, (usize, usize)>>,
    /// Observability context: the clock every stage is timed on and the
    /// registry executor metrics land in. Defaults to the real clock
    /// and the process-global registry.
    pub obs: ObsHandle,
    /// Deterministic fault injection for the scan (`None` = off; the
    /// default). When set, partition tasks are resolved against the
    /// config's fault plan and the query either completes — possibly
    /// degraded, with conservatively widened CIs — or returns a typed
    /// `ExecError::Degraded` / `ExecError::Unrecoverable`.
    pub faults: Option<FaultConfig>,
}

impl Default for ApproxOptions {
    fn default() -> Self {
        ApproxOptions {
            method: MethodChoice::Auto,
            bootstrap_k: 100,
            alpha: 0.95,
            diagnostic: None,
            seed: 0,
            threads: default_threads(),
            group_contexts: None,
            obs: ObsHandle::default(),
            faults: None,
        }
    }
}

impl ApproxOptions {
    /// Enable the diagnostic with sizes scaled to `sample_rows`.
    pub fn with_scaled_diagnostic(mut self, sample_rows: usize, p: usize) -> Self {
        self.diagnostic = Some(DiagnosticConfig::scaled_to(sample_rows, p));
        self
    }
}

/// Execute `plan` exactly over `table` (the fallback path when the
/// diagnostic rejects, and the ground-truth oracle in tests), timed on
/// the default (real) clock against the global registry.
pub fn execute_exact(
    plan: &LogicalPlan,
    table: &Table,
    registry: &UdfRegistry,
    threads: usize,
) -> Result<ExactResult> {
    execute_exact_observed(plan, table, registry, threads, &ObsHandle::default())
}

/// [`execute_exact`] with an explicit observability context.
pub fn execute_exact_observed(
    plan: &LogicalPlan,
    table: &Table,
    registry: &UdfRegistry,
    threads: usize,
    obs: &ObsHandle,
) -> Result<ExactResult> {
    let rec = obs.recorder();
    let span = rec.start(stage::EXACT_EXECUTION);
    let mem0 = aqp_obs::alloc::stats();
    let scan_start = obs.clock.now();
    let (collected, scan_obs) = collect_observed(plan, table, threads, &obs.clock)?;
    record_chain_ops(&rec, &obs.clock, scan_start, plan, &scan_obs.ops, None);
    record_workers(&rec, obs, &scan_obs.workers);
    let agg_start = obs.clock.now();
    let ctx = SampleContext::population(collected.pre_filter_rows);
    let thetas = prepare_thetas(&collected, registry)?;
    let groups: Vec<(String, Vec<f64>)> = collected
        .groups
        .iter()
        .map(|g| {
            let vals = g
                .aggs
                .iter()
                .zip(&thetas)
                .map(|(data, theta)| theta.estimate(data, &ctx))
                .collect();
            (g.key.clone(), vals)
        })
        .collect();
    record_plan_op(
        &rec,
        &obs.clock,
        agg_start,
        plan,
        "Aggregate",
        total_values(&collected),
        groups.len() as u64,
    );
    rec.attr(span, "rows_scanned", collected.pre_filter_rows);
    record_span_mem(&rec, span, &mem0);
    rec.end(span);
    let trace = rec.finish();
    Ok(ExactResult {
        groups,
        rows_scanned: collected.pre_filter_rows,
        timings: StageTimings::from_trace(&trace),
        trace,
    })
}

fn prepare_thetas(collected: &Collected, registry: &UdfRegistry) -> Result<Vec<PreparedTheta>> {
    collected
        .agg_exprs
        .iter()
        .map(|a| PreparedTheta::prepare(a, collected.inner_agg.as_ref(), registry))
        .collect()
}

/// Execute `plan` approximately over `sample` (a stored sample of a table
/// with `population_rows` rows), producing estimates, error bars, and
/// diagnostic verdicts in a single scan.
pub fn execute_approx(
    plan: &LogicalPlan,
    sample: &Table,
    population_rows: usize,
    registry: &UdfRegistry,
    opts: &ApproxOptions,
) -> Result<ApproxResult> {
    let seeds = SeedStream::new(opts.seed);
    opts.obs.metrics.counter(name::EXEC_APPROX_QUERIES).inc();
    let rec = opts.obs.recorder();

    // Stage 1 — scan + collect: one pass over the sample's partitions,
    // resolved against the fault plan when injection is enabled.
    let injector = opts.faults.as_ref().map(FaultInjector::new);
    let scan_span = rec.start(stage::SCAN_COLLECT);
    let scan_mem = aqp_obs::alloc::stats();
    let scan_start = opts.obs.clock.now();
    let (collected, scan_obs, fault_summary) =
        collect_observed_faulty(plan, sample, opts.threads, &opts.obs.clock, injector.as_ref())?;
    rec.attr(scan_span, "sample_rows", collected.pre_filter_rows);
    rec.attr(scan_span, "groups", collected.groups.len());
    let sample_fraction = (population_rows > 0)
        .then(|| collected.pre_filter_rows as f64 / population_rows as f64);
    record_chain_ops(&rec, &opts.obs.clock, scan_start, plan, &scan_obs.ops, sample_fraction);
    record_workers(&rec, &opts.obs, &scan_obs.workers);
    if let Some(sum) = &fault_summary {
        record_faults(&rec, &opts.obs, scan_span, scan_start, sum);
    }
    record_span_mem(&rec, scan_span, &scan_mem);
    rec.end(scan_span);

    // Recovery-policy gate: decide between a (possibly degraded)
    // approximate answer and a typed refusal. All CI half-widths from a
    // degraded sample are widened by `planned / effective` (≥ 1), which
    // dominates the natural sqrt growth of the standard error — error
    // bars can only get wider, never narrower (DESIGN §12).
    let degraded_info = degradation_gate(fault_summary.as_ref(), opts)?;

    let default_ctx = SampleContext::new(collected.pre_filter_rows, population_rows);
    let ctx_for = |key: &str| -> SampleContext {
        opts.group_contexts
            .as_ref()
            .and_then(|m| m.get(key))
            .map(|&(s, p)| SampleContext::new(s, p))
            .unwrap_or(default_ctx)
    };

    // Stage 2 — point estimates θ(S) from the collected data.
    let est_span = rec.start(stage::POINT_ESTIMATE);
    let est_mem = aqp_obs::alloc::stats();
    let est_start = opts.obs.clock.now();
    let thetas = prepare_thetas(&collected, registry)?;
    let estimates: Vec<Vec<f64>> = collected
        .groups
        .iter()
        .map(|g| {
            let ctx = ctx_for(&g.key);
            g.aggs
                .iter()
                .zip(&thetas)
                .map(|(data, theta)| theta.estimate(data, &ctx))
                .collect()
        })
        .collect();
    record_plan_op(
        &rec,
        &opts.obs.clock,
        est_start,
        plan,
        "Aggregate",
        total_values(&collected),
        collected.groups.len() as u64,
    );
    record_span_mem(&rec, est_span, &est_mem);
    rec.end(est_span);

    // Stage 3 — error estimation, per (group, aggregate), replicates
    // parallelized across groups.
    let err_span = rec.start(stage::ERROR_ESTIMATION);
    let err_mem = aqp_obs::alloc::stats();
    let err_start = opts.obs.clock.now();
    let jobs: Vec<(usize, usize)> = collected
        .groups
        .iter()
        .enumerate()
        .flat_map(|(gi, g)| (0..g.aggs.len()).map(move |ai| (gi, ai)))
        .collect();
    let (cis, err_workers): (Vec<(Option<aqp_stats::ci::Ci>, MethodUsed)>, Vec<WorkerStat>) =
        parallel_map_observed(jobs.clone(), opts.threads, &opts.obs.clock, |(gi, ai)| {
            let data = &collected.groups[gi].aggs[ai];
            let theta = &thetas[ai];
            let ctx = ctx_for(&collected.groups[gi].key);
            error_ci(theta, data, &ctx, opts, seeds.derive(0xC1).derive((gi * 64 + ai) as u64))
        });
    // Degraded runs widen every interval by the conservative factor.
    let cis: Vec<(Option<aqp_stats::ci::Ci>, MethodUsed)> = match &degraded_info {
        Some(d) if d.widen_factor > 1.0 => cis
            .into_iter()
            .map(|(ci, m)| {
                let widened = ci.map(|c| {
                    aqp_stats::ci::Ci::new(c.center, c.half_width * d.widen_factor, c.confidence)
                });
                (widened, m)
            })
            .collect(),
        _ => cis,
    };
    if let Some(d) = &degraded_info {
        rec.attr(err_span, "widen_factor", d.widen_factor);
        rec.attr(err_span, "effective_rows", d.effective_rows);
        rec.attr(err_span, "planned_rows", d.planned_rows);
    }
    let bootstrap_jobs = cis.iter().filter(|(_, m)| *m == MethodUsed::Bootstrap).count();
    rec.attr(err_span, "jobs", jobs.len());
    rec.attr(err_span, "bootstrap_jobs", bootstrap_jobs);
    rec.attr(err_span, "resamples", bootstrap_jobs * opts.bootstrap_k);
    if let Some(id) = record_plan_op(
        &rec,
        &opts.obs.clock,
        err_start,
        plan,
        "ErrorEstimate",
        jobs.len() as u64,
        cis.iter().filter(|(ci, _)| ci.is_some()).count() as u64,
    ) {
        rec.attr(id, "resamples", bootstrap_jobs * opts.bootstrap_k);
    }
    record_workers(&rec, &opts.obs, &err_workers);
    record_span_mem(&rec, err_span, &err_mem);
    rec.end(err_span);

    // Stage 4 — diagnostics, same job list.
    let diag_span = rec.start(stage::DIAGNOSTICS);
    let diag_mem = aqp_obs::alloc::stats();
    let diag_start = opts.obs.clock.now();
    let diags: Vec<Option<aqp_diagnostics::DiagnosticReport>> = match &opts.diagnostic {
        None => vec![None; jobs.len()],
        Some(cfg) => {
            // Degraded runs judge the sample that actually survived:
            // shrink the subsample sizes by the effective/planned ratio
            // so the largest level still fits the surviving rows.
            let cfg = match &degraded_info {
                Some(d) if d.effective_rows < d.planned_rows && d.planned_rows > 0 => {
                    let ratio = d.effective_rows as f64 / d.planned_rows as f64;
                    let mut scaled = cfg.clone();
                    for b in &mut scaled.subsample_rows {
                        *b = ((*b as f64 * ratio).round() as usize).max(1);
                    }
                    scaled.subsample_rows.dedup();
                    scaled
                }
                _ => cfg.clone(),
            };
            let cfg = &cfg;
            let (out, diag_workers) =
                parallel_map_observed(jobs.clone(), opts.threads, &opts.obs.clock, |(gi, ai)| {
                    let data = &collected.groups[gi].aggs[ai];
                    let theta = &thetas[ai];
                    let ctx = ctx_for(&collected.groups[gi].key);
                    Some(run_diagnostic_on_data(
                        theta,
                        data,
                        &ctx,
                        collected.pre_filter_rows,
                        cfg,
                        opts,
                        seeds.derive(0xD1).derive((gi * 64 + ai) as u64),
                    ))
                });
            record_workers(&rec, &opts.obs, &diag_workers);
            out
        }
    };
    let accepted = diags.iter().flatten().filter(|d| d.accepted).count();
    let rejected = diags.iter().flatten().count() - accepted;
    rec.attr(diag_span, "accepted", accepted);
    rec.attr(diag_span, "rejected", rejected);
    if opts.diagnostic.is_some() {
        if let Some(id) = record_plan_op(
            &rec,
            &opts.obs.clock,
            diag_start,
            plan,
            "Diagnostic",
            jobs.len() as u64,
            (accepted + rejected) as u64,
        ) {
            rec.attr(id, "accepted", accepted);
            rec.attr(id, "rejected", rejected);
        }
    }
    record_span_mem(&rec, diag_span, &diag_mem);
    rec.end(diag_span);

    // Stage 5 — assemble the result rows.
    let asm_span = rec.start(stage::ASSEMBLE);
    let mut groups: Vec<GroupResult> = Vec::with_capacity(collected.groups.len());
    let mut job_iter = 0usize;
    for (gi, g) in collected.groups.iter().enumerate() {
        let mut aggs = Vec::with_capacity(g.aggs.len());
        for (ai, &estimate) in estimates[gi].iter().enumerate() {
            let (ci, method) = cis[job_iter];
            let diagnostic = diags[job_iter].clone();
            job_iter += 1;
            aggs.push(AggResult {
                name: collected
                    .agg_exprs
                    .get(ai)
                    .map(|a| a.to_string())
                    .unwrap_or_else(|| format!("agg{ai}")),
                estimate,
                ci,
                method,
                diagnostic,
            });
        }
        groups.push(GroupResult { key: g.key.clone(), aggs });
    }
    rec.end(asm_span);

    let trace = rec.finish();
    Ok(ApproxResult {
        groups,
        sample_rows: collected.pre_filter_rows,
        population_rows,
        timings: StageTimings::from_trace(&trace),
        trace,
        degraded: degraded_info,
    })
}

/// Apply the recovery policy to the scan's fault summary: refuse with a
/// typed error when too much was lost, otherwise describe how degraded
/// the surviving sample is (`None` = not degraded at all).
fn degradation_gate(
    summary: Option<&ScanFaultSummary>,
    opts: &ApproxOptions,
) -> Result<Option<DegradedInfo>> {
    let (sum, cfg) = match (summary, opts.faults.as_ref()) {
        (Some(s), Some(c)) => (s, c),
        _ => return Ok(None),
    };
    if sum.total_partitions > 0 && sum.lost_partitions == sum.total_partitions {
        return Err(crate::ExecError::Unrecoverable(format!(
            "all {} sample partitions lost to injected faults",
            sum.total_partitions
        )));
    }
    let lost_fraction = if sum.total_partitions == 0 {
        0.0
    } else {
        sum.lost_partitions as f64 / sum.total_partitions as f64
    };
    if lost_fraction > cfg.recovery.max_lost_fraction {
        return Err(crate::ExecError::Degraded {
            lost_partitions: sum.lost_partitions,
            total_partitions: sum.total_partitions,
        });
    }
    if sum.degraded() {
        opts.obs.metrics.counter(name::FAULTS_DEGRADED_QUERIES).inc();
        Ok(Some(DegradedInfo {
            planned_rows: sum.planned_rows,
            effective_rows: sum.effective_rows,
            lost_partitions: sum.lost_partitions,
            total_partitions: sum.total_partitions,
            widen_factor: sum.widen_factor(),
        }))
    } else {
        Ok(None)
    }
}

/// Render the scan's fault activity as `fault:` / `retry:` /
/// `speculative:` child spans of the scan stage (events laid out
/// sequentially from `scan_start`, each spanning its injected delay)
/// and feed the `aqp.faults.*` metrics.
fn record_faults(
    rec: &TraceRecorder,
    obs: &ObsHandle,
    scan_span: SpanId,
    scan_start: Timestamp,
    sum: &ScanFaultSummary,
) {
    let m = &obs.metrics;
    if sum.injected > 0 {
        m.counter(name::FAULTS_INJECTED).add(sum.injected as u64);
    }
    if sum.retries > 0 {
        m.counter(name::FAULTS_RETRIES).add(sum.retries as u64);
    }
    if sum.timeouts > 0 {
        m.counter(name::FAULTS_TIMEOUTS).add(sum.timeouts as u64);
    }
    if sum.speculative_launched > 0 {
        m.counter(name::FAULTS_SPECULATIVE_LAUNCHED).add(sum.speculative_launched as u64);
    }
    if sum.speculative_wins > 0 {
        m.counter(name::FAULTS_SPECULATIVE_WINS).add(sum.speculative_wins as u64);
    }
    if sum.lost_partitions > 0 {
        m.counter(name::FAULTS_PARTITIONS_LOST).add(sum.lost_partitions as u64);
    }
    if sum.blacklisted_partitions > 0 {
        m.counter(name::FAULTS_PARTITIONS_BLACKLISTED).add(sum.blacklisted_partitions as u64);
    }
    if sum.rows_lost() > 0 {
        m.counter(name::FAULTS_ROWS_LOST).add(sum.rows_lost() as u64);
    }
    m.histogram(name::FAULTS_INJECTED_DELAY_MS).record(sum.total_delay);

    rec.attr(scan_span, "planned_rows", sum.planned_rows);
    rec.attr(scan_span, "effective_rows", sum.effective_rows);
    rec.attr(scan_span, "lost_partitions", sum.lost_partitions);
    rec.attr(scan_span, "degraded", sum.degraded());

    let mut cursor = scan_start;
    for report in &sum.reports {
        for ev in &report.events {
            let end =
                Timestamp::from_nanos(cursor.nanos().saturating_add(ev.delay.as_nanos() as u64));
            let id = rec.record_span(&ev.kind.span_name(), cursor, end);
            rec.attr(id, "task", ev.task);
            rec.attr(id, "attempt", ev.attempt);
            if let EventKind::SpeculativeLaunch { won } = &ev.kind {
                rec.attr(id, "won", won);
            }
            cursor = end;
        }
    }
}

/// Attach the counting allocator's growth since `before` to `span` as
/// `mem_allocs` / `mem_bytes` attributes (which flow into the profile's
/// extra attributes). A no-op — and zero trace-byte footprint — unless
/// the `count-alloc` feature compiled the allocator in, so default
/// builds stay bit-identical.
fn record_span_mem(rec: &TraceRecorder, span: SpanId, before: &aqp_obs::alloc::MemStats) {
    if !aqp_obs::alloc::enabled() {
        return;
    }
    let d = aqp_obs::alloc::stats().delta_since(before);
    rec.attr(span, "mem_allocs", d.allocs);
    rec.attr(span, "mem_bytes", d.alloc_bytes);
}

/// Workers slower than this factor times the median are counted as
/// stragglers (`aqp.exec.stragglers_detected`).
const STRAGGLER_FACTOR: f64 = 2.0;

/// Record per-worker busy times as child spans of the currently open
/// stage and feed the worker histogram / straggler counter.
fn record_workers(rec: &TraceRecorder, obs: &ObsHandle, workers: &[WorkerStat]) {
    let hist = obs.metrics.histogram(name::EXEC_WORKER_MS);
    for w in workers {
        let end = obs.clock.now();
        let start = Timestamp::from_nanos(end.nanos().saturating_sub(w.busy.as_nanos() as u64));
        let id = rec.record_span("worker", start, end);
        rec.attr(id, "worker", w.worker);
        rec.attr(id, "items", w.items);
        hist.record(w.busy);
    }
    let busy: Vec<std::time::Duration> = workers.iter().map(|w| w.busy).collect();
    let stragglers = count_stragglers(&busy, STRAGGLER_FACTOR);
    if stragglers > 0 {
        obs.metrics.counter(name::EXEC_STRAGGLERS).add(stragglers as u64);
    }
}

/// Record one `op:` span per pass-through chain operator inside the
/// currently open stage span, laid out sequentially from `stage_start`.
/// Per-operator busy times (summed across parallel partitions) are
/// scaled down when they overcommit the elapsed stage time, so the sum
/// of operator durations never exceeds the stage's wall time.
fn record_chain_ops(
    rec: &TraceRecorder,
    clock: &Clock,
    stage_start: Timestamp,
    plan: &LogicalPlan,
    ops: &[OpStats],
    sample_fraction: Option<f64>,
) {
    let total = clock.now().duration_since(stage_start).as_nanos() as u64;
    let busy_sum: u64 = ops.iter().map(|o| o.busy.as_nanos() as u64).sum();
    let scale = if busy_sum > total { total as f64 / busy_sum as f64 } else { 1.0 };
    let nodes = plan.nodes_preorder();
    let mut cursor = stage_start.nanos();
    for op in ops {
        let dur = (op.busy.as_nanos() as f64 * scale) as u64;
        let start = Timestamp::from_nanos(cursor);
        let end = Timestamp::from_nanos(cursor.saturating_add(dur));
        cursor = end.nanos();
        let id = rec.record_span(&format!("op:{}", op.name), start, end);
        rec.attr(id, "node_id", op.node_id);
        rec.attr(id, "detail", &op.detail);
        rec.attr(id, "rows_in", op.rows_in);
        rec.attr(id, "rows_out", op.rows_out);
        rec.attr(id, "batches", op.batches);
        rec.attr(id, "bytes", op.bytes);
        if op.name == "Scan" {
            if let Some(f) = sample_fraction {
                rec.attr(id, "sample_fraction", f);
            }
        }
        if op.name == "Resample" {
            if let Some(LogicalPlan::Resample { spec, .. }) =
                nodes.iter().find(|(i, _)| *i == op.node_id).map(|(_, n)| *n)
            {
                rec.attr(id, "resamples", spec.weight_columns());
            }
        }
    }
}

/// Record one `op:` span for the plan node named `name` (e.g. the
/// `Aggregate` driving the point-estimate stage), spanning
/// `[start, now]` inside the currently open stage span. Returns `None`
/// without recording when the plan has no such node (engines running
/// unrewritten plans simply skip those operators).
fn record_plan_op(
    rec: &TraceRecorder,
    clock: &Clock,
    start: Timestamp,
    plan: &LogicalPlan,
    name: &str,
    rows_in: u64,
    rows_out: u64,
) -> Option<SpanId> {
    let (node_id, node) = plan
        .nodes_preorder()
        .into_iter()
        .find(|(_, n)| n.op_name() == name)?;
    let id = rec.record_span(&format!("op:{name}"), start, clock.now());
    rec.attr(id, "node_id", node_id);
    rec.attr(id, "detail", node.describe());
    rec.attr(id, "rows_in", rows_in);
    rec.attr(id, "rows_out", rows_out);
    rec.attr(id, "batches", 1u64);
    rec.attr(id, "bytes", rows_out * 8);
    Some(id)
}

/// Total collected values across all groups' first aggregate: the row
/// count entering the aggregation operator.
fn total_values(collected: &Collected) -> u64 {
    collected
        .groups
        .iter()
        .map(|g| g.aggs.first().map_or(0, |a| a.values.len() as u64))
        .sum()
}

fn error_ci(
    theta: &PreparedTheta,
    data: &AggData,
    ctx: &SampleContext,
    opts: &ApproxOptions,
    seeds: SeedStream,
) -> (Option<aqp_stats::ci::Ci>, MethodUsed) {
    let use_closed_form = match opts.method {
        MethodChoice::Auto => theta.closed_form_applicable(),
        MethodChoice::ClosedForm => true,
        MethodChoice::Bootstrap => false,
    };
    if use_closed_form {
        match closed_form_ci_prepared(theta, data, ctx, opts.alpha) {
            Some(ci) => return (Some(ci), MethodUsed::ClosedForm),
            None => {
                if matches!(opts.method, MethodChoice::ClosedForm) {
                    return (None, MethodUsed::None);
                }
            }
        }
    }
    let mut rng = seeds.rng(0);
    match bootstrap_ci_prepared(&mut rng, theta, data, ctx, opts.bootstrap_k, opts.alpha) {
        Some(ci) => (Some(ci), MethodUsed::Bootstrap),
        None => (None, MethodUsed::None),
    }
}

/// Sub-range view used by the diagnostic's disjoint subsamples.
fn xi_half_width_on_range(
    theta: &PreparedTheta,
    data: &AggData,
    range: Range<usize>,
    sub_ctx: &SampleContext,
    opts: &ApproxOptions,
    seeds: &SeedStream,
    label: u64,
) -> f64 {
    let use_closed_form = match opts.method {
        MethodChoice::Auto => theta.closed_form_applicable(),
        MethodChoice::ClosedForm => true,
        MethodChoice::Bootstrap => false,
    };
    if use_closed_form {
        let sliced = slice_data(data, &range);
        if let Some(ci) = closed_form_ci_prepared(theta, &sliced, sub_ctx, opts.alpha) {
            return ci.half_width;
        }
        if matches!(opts.method, MethodChoice::ClosedForm) {
            return f64::NAN;
        }
    }
    let sliced = slice_data(data, &range);
    let mut rng = seeds.rng(label);
    bootstrap_ci_prepared(&mut rng, theta, &sliced, sub_ctx, opts.bootstrap_k, opts.alpha)
        .map(|ci| ci.half_width)
        .unwrap_or(f64::NAN)
}

fn slice_data(data: &AggData, range: &Range<usize>) -> AggData {
    AggData {
        values: data.values[range.clone()].to_vec(),
        positions: if data.positions.len() == data.values.len() {
            data.positions[range.clone()].to_vec()
        } else {
            Vec::new()
        },
        nested: data.nested.as_ref().map(|nd| crate::collect::NestedData {
            codes: nd.codes[range.clone()].to_vec(),
            n_codes: nd.n_codes,
        }),
    }
}

/// The diagnostic operator: Algorithm 1 over the already-collected data.
///
/// `row_window` is the total pre-filter row count the positions in
/// `data` index into (the whole sample). For uniform samples it equals
/// `ctx.sample_rows`; for a stratified group, `ctx.sample_rows` is the
/// *stratum's* sample size while positions still span the whole sample,
/// so subsample contexts are scaled by the stratum's share.
#[allow(clippy::too_many_arguments)]
fn run_diagnostic_on_data(
    theta: &PreparedTheta,
    data: &AggData,
    ctx: &SampleContext,
    row_window: usize,
    cfg: &DiagnosticConfig,
    opts: &ApproxOptions,
    seeds: SeedStream,
) -> aqp_diagnostics::DiagnosticReport {
    let theta_s = theta.estimate(data, ctx);
    let share = if row_window == 0 { 1.0 } else { ctx.sample_rows as f64 / row_window as f64 };
    let mut levels = Vec::with_capacity(cfg.subsample_rows.len());
    for (li, &b) in cfg.subsample_rows.iter().enumerate() {
        let sub_rows = ((b as f64 * share).round() as usize).max(1);
        let sub_ctx = SampleContext::new(sub_rows, ctx.population_rows);
        let level_seeds = seeds.derive(li as u64);
        let mut theta_hats = Vec::with_capacity(cfg.p);
        let mut xi_half_widths = Vec::with_capacity(cfg.p);
        for j in 0..cfg.p {
            // Disjoint subsamples are *pre-filter row* ranges of the
            // shuffled sample, so filtered counts vary binomially across
            // subsamples as they do across real samples.
            let range = data.range_for_rows(j * b, (j + 1) * b, row_window);
            theta_hats.push(theta.estimate_range(data, range.clone(), &sub_ctx));
            xi_half_widths.push(xi_half_width_on_range(
                theta,
                data,
                range,
                &sub_ctx,
                opts,
                &level_seeds,
                j as u64,
            ));
        }
        levels.push(LevelEstimates { b, theta_hats, xi_half_widths });
    }
    evaluate_from_estimates(theta_s, &levels, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_sql::{parse_query, plan_query};
    use aqp_stats::dist::sample_lognormal;
    use aqp_stats::rng::rng_from_seed;
    use aqp_stats::sampling::with_replacement_indices;
    use aqp_storage::{Batch, Column, DataType, Field, Schema};

    /// A synthetic sessions table with lognormal times, Zipf-free city mix.
    fn population(rows: usize, seed: u64) -> Table {
        let mut rng = rng_from_seed(seed);
        let cities = ["NYC", "SF", "LA", "CHI"];
        let city: Vec<&str> = (0..rows).map(|i| cities[i % 4]).collect();
        let time: Vec<f64> = (0..rows).map(|_| sample_lognormal(&mut rng, 2.0, 0.6)).collect();
        let user: Vec<i64> = (0..rows).map(|i| (i % 500) as i64).collect();
        let schema = Schema::new(vec![
            Field::new("city", DataType::Str),
            Field::new("time", DataType::Float),
            Field::new("user_id", DataType::Int),
        ])
        .unwrap();
        let batch = Batch::new(
            schema,
            vec![Column::from_strs(&city), Column::from_f64s(time), Column::from_i64s(user)],
        )
        .unwrap();
        Table::from_batch("sessions", batch, 4).unwrap()
    }

    /// Draw a shuffled with-replacement sample table.
    fn sample_of(table: &Table, n: usize, seed: u64) -> Table {
        let mut rng = rng_from_seed(seed);
        let idx = with_replacement_indices(&mut rng, n, table.num_rows());
        let batch = table.to_batch().unwrap().gather(&idx).unwrap();
        Table::from_batch("sessions_sample", batch, 4).unwrap()
    }

    fn plan_of(sql: &str, table: &Table) -> LogicalPlan {
        let q = parse_query(sql).unwrap();
        plan_query(&q, table.schema()).unwrap()
    }

    #[test]
    fn approx_avg_matches_exact_within_ci() {
        let pop = population(100_000, 1);
        let sample = sample_of(&pop, 20_000, 2);
        let plan = plan_of("SELECT AVG(time) FROM sessions WHERE city = 'NYC'", &pop);
        let registry = UdfRegistry::default();

        let exact = execute_exact(&plan, &pop, &registry, 2).unwrap();
        let truth = exact.scalar().unwrap();

        let opts = ApproxOptions { seed: 3, ..Default::default() };
        let approx = execute_approx(&plan, &sample, pop.num_rows(), &registry, &opts).unwrap();
        let r = approx.scalar().unwrap();
        let ci = r.ci.unwrap();
        assert_eq!(r.method, MethodUsed::ClosedForm); // Auto picks closed form for AVG
        assert!(
            (r.estimate - truth).abs() < 6.0 * ci.half_width,
            "estimate {} vs truth {truth} (hw {})",
            r.estimate,
            ci.half_width
        );
        assert!(ci.contains(truth) || (r.estimate - truth).abs() < 3.0 * ci.half_width);
    }

    #[test]
    fn sum_and_count_scale_to_population() {
        let pop = population(50_000, 4);
        let sample = sample_of(&pop, 10_000, 5);
        let plan = plan_of("SELECT COUNT(*), SUM(time) FROM sessions WHERE city = 'SF'", &pop);
        let registry = UdfRegistry::default();
        let exact = execute_exact(&plan, &pop, &registry, 2).unwrap();
        let (_, exact_vals) = &exact.groups[0];

        let opts = ApproxOptions { seed: 6, ..Default::default() };
        let approx = execute_approx(&plan, &sample, pop.num_rows(), &registry, &opts).unwrap();
        let count_est = approx.groups[0].aggs[0].estimate;
        let sum_est = approx.groups[0].aggs[1].estimate;
        assert!((count_est - exact_vals[0]).abs() / exact_vals[0] < 0.1,
            "count {count_est} vs {}", exact_vals[0]);
        assert!((sum_est - exact_vals[1]).abs() / exact_vals[1] < 0.1,
            "sum {sum_est} vs {}", exact_vals[1]);
    }

    #[test]
    fn group_by_gives_per_group_results() {
        let pop = population(40_000, 7);
        let sample = sample_of(&pop, 8_000, 8);
        let plan = plan_of("SELECT city, AVG(time) FROM sessions GROUP BY city", &pop);
        let registry = UdfRegistry::default();
        let opts = ApproxOptions { seed: 9, ..Default::default() };
        let approx = execute_approx(&plan, &sample, pop.num_rows(), &registry, &opts).unwrap();
        assert_eq!(approx.groups.len(), 4);
        for g in &approx.groups {
            assert!(g.aggs[0].ci.is_some(), "group {} lacks CI", g.key);
        }
    }

    #[test]
    fn bootstrap_forced_for_max() {
        let pop = population(40_000, 10);
        let sample = sample_of(&pop, 8_000, 11);
        let plan = plan_of("SELECT MAX(time) FROM sessions", &pop);
        let registry = UdfRegistry::default();
        let opts = ApproxOptions { seed: 12, ..Default::default() };
        let approx = execute_approx(&plan, &sample, pop.num_rows(), &registry, &opts).unwrap();
        assert_eq!(approx.scalar().unwrap().method, MethodUsed::Bootstrap);
    }

    #[test]
    fn closed_form_only_gives_none_for_max() {
        let pop = population(20_000, 13);
        let sample = sample_of(&pop, 4_000, 14);
        let plan = plan_of("SELECT MAX(time) FROM sessions", &pop);
        let registry = UdfRegistry::default();
        let opts =
            ApproxOptions { seed: 15, method: MethodChoice::ClosedForm, ..Default::default() };
        let approx = execute_approx(&plan, &sample, pop.num_rows(), &registry, &opts).unwrap();
        let r = approx.scalar().unwrap();
        assert_eq!(r.method, MethodUsed::None);
        assert!(r.ci.is_none());
    }

    #[test]
    fn diagnostic_accepts_avg_rejects_nothing_on_benign_data() {
        let pop = population(100_000, 16);
        let sample = sample_of(&pop, 30_000, 17);
        let plan = plan_of("SELECT AVG(time) FROM sessions", &pop);
        let registry = UdfRegistry::default();
        let opts = ApproxOptions { seed: 18, ..Default::default() }
            .with_scaled_diagnostic(30_000, 50);
        let approx = execute_approx(&plan, &sample, pop.num_rows(), &registry, &opts).unwrap();
        let r = approx.scalar().unwrap();
        let d = r.diagnostic.as_ref().unwrap();
        assert!(d.accepted, "{d:#?}");
        assert!(r.error_bars_reliable());
        assert!(approx.timings.diagnostics() > std::time::Duration::ZERO);
        // The executor trace must name every pipeline stage.
        let stages: Vec<&str> = approx.trace.stages().iter().map(|&(n, _)| n).collect();
        for want in [
            stage::SCAN_COLLECT,
            stage::POINT_ESTIMATE,
            stage::ERROR_ESTIMATION,
            stage::DIAGNOSTICS,
            stage::ASSEMBLE,
        ] {
            assert!(stages.contains(&want), "missing stage {want} in {stages:?}");
        }
        let d = approx.trace.find(stage::DIAGNOSTICS).unwrap();
        assert_eq!(d.attr("accepted"), Some("1"));
    }

    #[test]
    fn nested_query_executes_with_bootstrap() {
        let pop = population(30_000, 19);
        let sample = sample_of(&pop, 6_000, 20);
        let plan = plan_of(
            "SELECT AVG(s) FROM (SELECT SUM(time) AS s FROM sessions GROUP BY user_id)",
            &pop,
        );
        let registry = UdfRegistry::default();
        let opts = ApproxOptions { seed: 21, ..Default::default() };
        let approx = execute_approx(&plan, &sample, pop.num_rows(), &registry, &opts).unwrap();
        let r = approx.scalar().unwrap();
        assert_eq!(r.method, MethodUsed::Bootstrap);
        assert!(r.ci.is_some());
        assert!(r.estimate.is_finite());
    }

    #[test]
    fn udf_query_executes_with_bootstrap() {
        let pop = population(30_000, 22);
        let sample = sample_of(&pop, 6_000, 23);
        let plan = plan_of("SELECT trimmed_mean(time) FROM sessions", &pop);
        let registry = UdfRegistry::default();
        let opts = ApproxOptions { seed: 24, ..Default::default() };
        let approx = execute_approx(&plan, &sample, pop.num_rows(), &registry, &opts).unwrap();
        let r = approx.scalar().unwrap();
        assert_eq!(r.method, MethodUsed::Bootstrap);
        assert!(r.ci.is_some());
    }

    #[test]
    fn approx_trace_carries_operator_spans_with_counters() {
        use aqp_sql::logical::{DiagnosticWeights, ErrorMethod, ResampleSpec};
        use aqp_sql::rewriter::{rewrite_for_error_estimation, ResamplePlacement};

        let pop = population(20_000, 30);
        let sample = sample_of(&pop, 5_000, 31);
        let mut spec = ResampleSpec::bootstrap(20, 31);
        spec.diagnostic = Some(DiagnosticWeights { subsample_rows: vec![100, 200], p: 20 });
        let plan = rewrite_for_error_estimation(
            plan_of("SELECT AVG(time) FROM sessions WHERE city = 'NYC'", &pop),
            spec,
            ErrorMethod::Bootstrap,
            0.95,
            ResamplePlacement::PushedDown,
        );
        let registry = UdfRegistry::default();
        let opts = ApproxOptions {
            seed: 32,
            threads: 2,
            method: MethodChoice::Bootstrap,
            bootstrap_k: 20,
            ..Default::default()
        }
        .with_scaled_diagnostic(5_000, 20);
        let approx = execute_approx(&plan, &sample, pop.num_rows(), &registry, &opts).unwrap();

        // One op: span per plan operator, each tagged with its preorder
        // node id and row counters.
        let ops: Vec<&aqp_obs::Span> = approx
            .trace
            .spans
            .iter()
            .filter(|s| s.name.starts_with("op:"))
            .collect();
        let names: Vec<&str> = ops.iter().map(|s| s.name.as_str()).collect();
        for want in ["op:Scan", "op:Filter", "op:Resample", "op:Aggregate", "op:ErrorEstimate", "op:Diagnostic"]
        {
            assert!(names.contains(&want), "missing {want} in {names:?}");
        }
        let scan = ops.iter().find(|s| s.name == "op:Scan").unwrap();
        assert_eq!(scan.attr("rows_in"), Some("5000"));
        assert_eq!(scan.attr("rows_out"), Some("5000"));
        assert_eq!(scan.attr("sample_fraction"), Some("0.25"));
        assert_eq!(scan.attr("detail"), Some("Scan[sessions]"));
        let filter = ops.iter().find(|s| s.name == "op:Filter").unwrap();
        assert_eq!(filter.attr("rows_in"), Some("5000"));
        let survivors: usize = filter.attr("rows_out").unwrap().parse().unwrap();
        assert!(survivors > 0 && survivors < 5_000);
        // Node ids within one execution strictly descend (scan-first).
        let ids: Vec<usize> =
            ops.iter().map(|s| s.attr("node_id").unwrap().parse().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[1] < w[0]), "ids not descending: {ids:?}");
        // The error-estimate op carries the attributed resample count
        // (one bootstrap job × K = 20), the resample op its weight count.
        let err = ops.iter().find(|s| s.name == "op:ErrorEstimate").unwrap();
        assert_eq!(err.attr("resamples"), Some("20"));
        // The resample op's weight count: K=20 bootstrap + 2 levels × p=20
        // diagnostic columns (Fig. 6(a)).
        let rs = ops.iter().find(|s| s.name == "op:Resample").unwrap();
        assert_eq!(rs.attr("resamples"), Some("60"));
        // The diagnostic op reports its verdict tallies.
        let diag = ops.iter().find(|s| s.name == "op:Diagnostic").unwrap();
        assert!(diag.attr("accepted").is_some());
        assert_eq!(diag.attr("rows_out"), Some("1"));
        // Per-stage reconciliation: op spans under a stage never sum past
        // the stage's wall time (sequential scaled layout).
        for (p, stage_span) in approx.trace.spans.iter().enumerate() {
            if stage_span.name.starts_with("op:") || stage_span.name == "worker" {
                continue;
            }
            let op_total: std::time::Duration = approx
                .trace
                .spans
                .iter()
                .filter(|s| s.parent == Some(p) && s.name.starts_with("op:"))
                .map(|s| s.duration())
                .sum();
            assert!(
                op_total <= stage_span.duration(),
                "{}: ops {op_total:?} > wall {:?}",
                stage_span.name,
                stage_span.duration()
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let pop = population(20_000, 25);
        let sample = sample_of(&pop, 5_000, 26);
        let plan = plan_of("SELECT SUM(time) FROM sessions WHERE city = 'LA'", &pop);
        let registry = UdfRegistry::default();
        let opts = ApproxOptions {
            seed: 27,
            method: MethodChoice::Bootstrap,
            ..Default::default()
        };
        let a = execute_approx(&plan, &sample, pop.num_rows(), &registry, &opts).unwrap();
        let b = execute_approx(&plan, &sample, pop.num_rows(), &registry, &opts).unwrap();
        assert_eq!(a.scalar().unwrap().ci, b.scalar().unwrap().ci);
    }
}

//! The aggregate-UDF registry.
//!
//! §2.3.2 treats UDFs as black boxes: no closed form exists, only the
//! bootstrap applies. The registry maps SQL-level names to concrete
//! [`aqp_stats::estimator::Udf`]s. The stock library mirrors the
//! Conviva-style UDFs shipped with `aqp-stats`.

use std::collections::HashMap;
use std::sync::Arc;

use aqp_stats::estimator::{udfs, Udf};

use crate::{ExecError, Result};

/// A registry of named aggregate UDFs.
#[derive(Clone)]
pub struct UdfRegistry {
    udfs: HashMap<String, Arc<Udf>>,
}

impl std::fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.udfs.keys().map(String::as_str).collect();
        names.sort_unstable();
        write!(f, "UdfRegistry{names:?}")
    }
}

impl Default for UdfRegistry {
    fn default() -> Self {
        Self::with_stock_library()
    }
}

impl UdfRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        UdfRegistry { udfs: HashMap::new() }
    }

    /// The stock library:
    ///
    /// * `trimmed_mean` — mean of the central 80% band,
    /// * `top_decile_mean` — mean of the top 10% (MAX-like sensitivity),
    /// * `geo_mean` — geometric mean,
    /// * `cov` — coefficient of variation,
    /// * `frac_above_p90`-style helpers are registered by the workload
    ///   crate with concrete thresholds.
    pub fn with_stock_library() -> Self {
        let mut r = UdfRegistry::empty();
        r.register("trimmed_mean", udfs::trimmed_mean(0.1, 0.9));
        r.register("top_decile_mean", udfs::top_fraction_mean(0.1));
        r.register("geo_mean", udfs::geometric_mean());
        r.register("cov", udfs::coeff_of_variation());
        r
    }

    /// Register (or replace) a UDF under `name` (lowercased).
    pub fn register(&mut self, name: impl Into<String>, udf: Udf) {
        self.udfs.insert(name.into().to_ascii_lowercase(), Arc::new(udf));
    }

    /// Resolve a name.
    pub fn resolve(&self, name: &str) -> Result<Arc<Udf>> {
        self.udfs
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| ExecError::UnknownUdf(name.to_owned()))
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.udfs.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_stats::estimator::{QueryEstimator, SampleContext};

    #[test]
    fn stock_library_resolves() {
        let r = UdfRegistry::default();
        for name in ["trimmed_mean", "TOP_DECILE_MEAN", "geo_mean", "cov"] {
            assert!(r.resolve(name).is_ok(), "{name}");
        }
        assert!(r.resolve("nope").is_err());
    }

    #[test]
    fn custom_registration_and_evaluation() {
        let mut r = UdfRegistry::empty();
        r.register("second_moment", Udf::new("second_moment", |xs| {
            xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64
        }));
        let udf = r.resolve("second_moment").unwrap();
        let ctx = SampleContext::population(3);
        assert!((udf.estimate(&[1.0, 2.0, 3.0], &ctx) - 14.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn names_listing() {
        let r = UdfRegistry::default();
        let names = r.names();
        assert!(names.contains(&"geo_mean".to_string()));
        assert!(names.windows(2).all(|w| w[0] <= w[1]));
    }
}

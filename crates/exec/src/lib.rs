//! # aqp-exec
//!
//! Physical execution for `reliable-aqp`: the engine that turns a logical
//! plan plus a stored sample into an approximate answer, an error
//! estimate, and a diagnostic verdict — in **one scan** (§5.3.1), with the
//! resampling operator operating post-filter (§5.3.2) and all aggregate
//! operators working directly on Poisson-weighted tuples.
//!
//! Layout:
//!
//! * [`udf`] — the aggregate-UDF registry (resolves `AggFunc::Udf` names
//!   to concrete estimators).
//! * [`collect`] — the scan/filter/project pipeline: walks the plan over
//!   the table's partitions (in parallel) and produces per-group
//!   aggregation inputs.
//! * [`theta`] — prepared query estimators θ, including the nested
//!   two-level aggregates of QSet-2, with weighted (resample) evaluation.
//! * [`engine`] — the optimized executor (`execute_approx`): point
//!   estimate + bootstrap/closed-form error + diagnostic from one pass.
//! * [`baseline`] — the §5.2 naive executor: one physical re-scan per
//!   bootstrap subquery and per diagnostic subquery, kept as the measured
//!   baseline for the Fig. 7/8 experiments.
//! * [`parallel`] — crossbeam-scoped helpers for partition- and
//!   replicate-parallelism, with per-worker busy-time observation for
//!   straggler detection.
//! * [`result`] — result types with trace-derived per-stage timings.
//!
//! Every `execute_approx` call records an `aqp_obs::QueryTrace` (scan →
//! point estimate → error estimation → diagnostics → assemble, with
//! per-worker child spans) returned in `ApproxResult::trace`; timing
//! reads the clock in `ApproxOptions::obs` so tests can use a mock.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod collect;
pub mod engine;
pub mod parallel;
pub mod result;
pub mod theta;
pub mod udf;

pub use engine::{execute_approx, execute_exact, execute_exact_observed, ApproxOptions};
pub use result::{AggResult, ApproxResult, ExactResult, StageTimings};
pub use udf::UdfRegistry;

/// Execution errors.
#[derive(Debug)]
pub enum ExecError {
    /// Storage-layer failure.
    Storage(aqp_storage::StorageError),
    /// SQL-layer failure.
    Sql(aqp_sql::SqlError),
    /// The plan has a shape the executor does not support.
    Unsupported(String),
    /// A UDF name could not be resolved.
    UnknownUdf(String),
    /// An internal plan-shape invariant was violated (a bug in plan
    /// decomposition, not in the caller's query).
    PlanInvariant(String),
    /// Injected faults lost more partitions than the recovery policy
    /// tolerates; the surviving sample is too degraded to answer from.
    /// Callers should fall back to exact execution (or re-run).
    Degraded {
        /// Partitions whose data was lost after recovery ran out.
        lost_partitions: usize,
        /// Partitions the scan planned to read.
        total_partitions: usize,
    },
    /// Every sample partition was lost; no approximate answer is
    /// derivable from this scan at all.
    Unrecoverable(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Storage(e) => write!(f, "storage error: {e}"),
            ExecError::Sql(e) => write!(f, "sql error: {e}"),
            ExecError::Unsupported(m) => write!(f, "unsupported plan: {m}"),
            ExecError::UnknownUdf(n) => write!(f, "unknown UDF: {n}"),
            ExecError::PlanInvariant(m) => write!(f, "plan invariant violated: {m}"),
            ExecError::Degraded { lost_partitions, total_partitions } => write!(
                f,
                "degraded beyond policy: lost {lost_partitions} of {total_partitions} sample partitions"
            ),
            ExecError::Unrecoverable(m) => write!(f, "unrecoverable fault: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<aqp_storage::StorageError> for ExecError {
    fn from(e: aqp_storage::StorageError) -> Self {
        ExecError::Storage(e)
    }
}

impl From<aqp_sql::SqlError> for ExecError {
    fn from(e: aqp_sql::SqlError) -> Self {
        ExecError::Sql(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ExecError>;

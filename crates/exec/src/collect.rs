//! The scan/filter/project pipeline: plan → per-group aggregation inputs.
//!
//! One pass over the table's partitions (in parallel) produces, for every
//! top-level group and every aggregate in the SELECT list, the dense
//! `f64` vector the estimators consume. This *is* the scan-consolidation
//! point: the same vectors feed the point estimate, every bootstrap
//! replicate, and every diagnostic subsample (§5.3.1).

use std::collections::HashMap;
use std::time::Duration;

use aqp_faults::{FaultInjector, ScanFaultSummary};
use aqp_obs::Clock;
use aqp_sql::ast::{AggExpr, AggFunc};
use aqp_sql::expr::{eval, eval_predicate};
use aqp_sql::logical::LogicalPlan;
use aqp_storage::{Batch, Table};

use crate::parallel::{parallel_map_observed, WorkerStat};
use crate::{ExecError, Result};

/// Inner-group encoding for nested (two-level) aggregates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NestedData {
    /// Per-row inner-group code, aligned with the values vector.
    pub codes: Vec<u32>,
    /// Number of distinct inner groups.
    pub n_codes: usize,
}

/// The aggregation input for one aggregate within one top-level group.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AggData {
    /// Post-filter aggregate-argument values (NULLs dropped).
    pub values: Vec<f64>,
    /// Pre-filter row position (in sample scan order) of each value.
    /// Sorted ascending. The diagnostic partitions subsamples by *row*
    /// ranges over these positions so that per-subsample filtered counts
    /// keep their natural binomial variation (without this, SUM/COUNT
    /// subsample estimates would be artificially constant and the
    /// diagnostic would mis-fire). Empty when untracked.
    pub positions: Vec<u32>,
    /// Inner grouping, present only for nested plans.
    pub nested: Option<NestedData>,
}

impl AggData {
    /// The value-index range whose positions fall in the pre-filter row
    /// range `[row_lo, row_hi)`. Falls back to proportional value-count
    /// chunking when positions are untracked.
    pub fn range_for_rows(&self, row_lo: usize, row_hi: usize, sample_rows: usize) -> std::ops::Range<usize> {
        if self.positions.len() == self.values.len() && !self.positions.is_empty() {
            let lo = self.positions.partition_point(|&p| (p as usize) < row_lo);
            let hi = self.positions.partition_point(|&p| (p as usize) < row_hi);
            lo..hi
        } else {
            // Proportional fallback.
            let sel = if sample_rows == 0 { 0.0 } else { self.values.len() as f64 / sample_rows as f64 };
            let lo = ((row_lo as f64 * sel).round() as usize).min(self.values.len());
            let hi = ((row_hi as f64 * sel).round() as usize).min(self.values.len());
            lo..hi.max(lo)
        }
    }
}

/// One top-level group's inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    /// Rendered group key (empty string for the global group).
    pub key: String,
    /// One entry per aggregate in the SELECT list.
    pub aggs: Vec<AggData>,
}

/// Everything one scan produced.
#[derive(Debug, Clone)]
pub struct Collected {
    /// Rows scanned before filtering (the sample size n).
    pub pre_filter_rows: usize,
    /// Top-level groups in first-seen order.
    pub groups: Vec<Group>,
    /// The aggregate expressions, in SELECT order (shared by all groups).
    pub agg_exprs: Vec<AggExpr>,
    /// Whether this came from a nested (two-level) plan.
    pub nested: bool,
    /// The inner aggregate of a nested plan.
    pub inner_agg: Option<AggExpr>,
}

/// Per-operator counters accumulated across all partitions of one scan,
/// in chain (scan-first) order — the raw material for `aqp-prof`'s
/// `EXPLAIN ANALYZE` tree.
#[derive(Debug, Clone, PartialEq)]
pub struct OpStats {
    /// Preorder node id of the operator within the executed plan.
    pub node_id: usize,
    /// Bare operator name (`Scan`, `Filter`, …).
    pub name: &'static str,
    /// One-line operator description (`LogicalPlan::describe`).
    pub detail: String,
    /// Rows entering the operator (summed over partitions).
    pub rows_in: u64,
    /// Rows leaving the operator.
    pub rows_out: u64,
    /// Partition batches processed.
    pub batches: u64,
    /// Estimated bytes moved (8-byte cells: `rows_out × columns`).
    pub bytes: u64,
    /// Busy time spent inside the operator, summed over partitions (on
    /// the collection clock; exceeds wall time under parallelism).
    pub busy: Duration,
}

/// Scan-side observability: per-chain-operator stats plus the worker
/// pool's busy splits.
#[derive(Debug, Clone, Default)]
pub struct CollectObs {
    /// One entry per pass-through chain operator, scan first (descending
    /// plan node ids).
    pub ops: Vec<OpStats>,
    /// Per-worker stats from the partition pool.
    pub workers: Vec<WorkerStat>,
}

/// Per-partition counter deltas for one chain operator.
#[derive(Debug, Clone, Copy, Default)]
struct OpDelta {
    rows_in: u64,
    rows_out: u64,
    batches: u64,
    bytes: u64,
    busy: Duration,
}

/// The decomposed plan shape the executor supports.
struct PlanShape<'a> {
    /// Pass-through chain from scan upward (scan first), excluding
    /// aggregate/estimation nodes. `Resample` nodes are recorded but
    /// treated as no-ops during collection (weights are streamed by the
    /// engine, not materialized).
    chain: Vec<&'a LogicalPlan>,
    inner_agg: Option<&'a LogicalPlan>,
    top_agg: &'a LogicalPlan,
}

fn decompose(plan: &LogicalPlan) -> Result<PlanShape<'_>> {
    // Strip ErrorEstimate/Diagnostic wrappers.
    let mut node = plan;
    while let LogicalPlan::ErrorEstimate { input, .. } | LogicalPlan::Diagnostic { input } = node {
        node = input;
    }
    let top_agg = match node {
        LogicalPlan::Aggregate { .. } => node,
        other => {
            return Err(ExecError::Unsupported(format!(
                "plan root must be an aggregate, found {other:?}"
            )))
        }
    };
    let mut below = top_agg.input().expect("aggregate has input");
    // Pass through filters/projections between the two aggregates? The
    // supported nested shape is: outer Aggregate directly over inner
    // Aggregate (optionally with a filter between).
    let mut inner_agg = None;
    let mut probe = below;
    loop {
        match probe {
            LogicalPlan::Aggregate { .. } => {
                inner_agg = Some(probe);
                below = probe.input().expect("aggregate has input");
                break;
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Resample { input, .. }
            | LogicalPlan::TableSample { input, .. } => {
                probe = input;
            }
            LogicalPlan::Scan { .. } => break,
            other => {
                return Err(ExecError::Unsupported(format!("unsupported node {other:?}")))
            }
        }
    }
    if inner_agg.is_some() {
        // Filters between the aggregates are not supported (the paper's
        // nested queries filter at the base level).
        if !matches!(top_agg.input(), Some(LogicalPlan::Aggregate { .. })) {
            return Err(ExecError::Unsupported(
                "operators between nested aggregates are not supported".into(),
            ));
        }
    }

    // Build the pass-through chain (scan-first order) below the innermost
    // aggregate.
    let mut chain_rev = Vec::new();
    let mut cur = below;
    loop {
        chain_rev.push(cur);
        match cur {
            LogicalPlan::Scan { .. } => break,
            _ => {
                cur = cur
                    .input()
                    .ok_or_else(|| ExecError::Unsupported("chain without scan leaf".into()))?;
            }
        }
    }
    chain_rev.reverse();
    Ok(PlanShape { chain: chain_rev, inner_agg, top_agg })
}

/// Apply the pass-through chain to one partition batch (filters and
/// projections; `Resample` is a no-op here). Also returns, per surviving
/// row, its original row index within the partition, and per chain
/// operator the rows/bytes/busy-time deltas for this partition.
fn apply_chain(
    chain: &[&LogicalPlan],
    batch: &Batch,
    clock: &Clock,
) -> Result<(Batch, Vec<u32>, Vec<OpDelta>)> {
    let mut current = batch.clone();
    let mut positions: Vec<u32> = (0..batch.num_rows() as u32).collect();
    let mut deltas = Vec::with_capacity(chain.len());
    for node in chain {
        let start = clock.now();
        let rows_in = current.num_rows() as u64;
        match node {
            LogicalPlan::Scan { .. } | LogicalPlan::Resample { .. } => {}
            LogicalPlan::TableSample { rate, seed, .. } => {
                // Physically replicate each row Poisson(rate) times (§5.2's
                // explicit operator). Deterministic per (seed, partition
                // content) via the rows' current positions.
                use aqp_stats::dist::sample_poisson;
                let mut rng = aqp_stats::rng::SeedStream::new(*seed)
                    .rng(positions.first().copied().unwrap_or(0) as u64);
                let mut indices = Vec::with_capacity(current.num_rows());
                for i in 0..current.num_rows() {
                    let w = sample_poisson(&mut rng, *rate);
                    for _ in 0..w {
                        indices.push(i);
                    }
                }
                positions = indices.iter().map(|&i| positions[i]).collect();
                current = current.gather(&indices).map_err(ExecError::Storage)?;
            }
            LogicalPlan::Filter { predicate, .. } => {
                let mask = eval_predicate(predicate, &current)?;
                positions = positions
                    .iter()
                    .zip(&mask)
                    .filter_map(|(&p, &m)| m.then_some(p))
                    .collect();
                current = current.filter(&mask)?;
            }
            LogicalPlan::Project { exprs, .. } => {
                let mut cols = Vec::with_capacity(exprs.len());
                let mut fields = Vec::with_capacity(exprs.len());
                for (e, name) in exprs {
                    let c = eval(e, &current)?;
                    fields.push(aqp_storage::Field::nullable(name.clone(), c.data_type()));
                    cols.push(c);
                }
                let schema = aqp_storage::Schema::new(fields)
                    .map_err(ExecError::Storage)?;
                current = Batch::new(schema, cols).map_err(ExecError::Storage)?;
            }
            other => {
                return Err(ExecError::Unsupported(format!("{other:?} in pass-through chain")))
            }
        }
        let rows_out = current.num_rows() as u64;
        deltas.push(OpDelta {
            rows_in,
            rows_out,
            batches: 1,
            bytes: rows_out * current.columns().len() as u64 * 8,
            busy: clock.now().duration_since(start),
        });
    }
    Ok((current, positions, deltas))
}

/// Render a composite group key for row `i` from the key columns.
fn group_key(batch: &Batch, key_cols: &[usize], i: usize) -> String {
    let mut s = String::new();
    for (j, &c) in key_cols.iter().enumerate() {
        if j > 0 {
            s.push('\u{1f}'); // unit separator keeps composite keys unambiguous
        }
        match batch.column(c).value(i) {
            Ok(v) => {
                use std::fmt::Write;
                let _ = write!(s, "{v}");
            }
            Err(_) => s.push('?'),
        }
    }
    s
}

/// One partition scan task, after fault resolution.
struct ScanItem {
    part: aqp_storage::Partition,
    /// Starting row offset within the *effective* (surviving) sample.
    offset: u32,
    /// Rows of this partition that survive (0 when lost, a truncated
    /// prefix length when a truncation fired, otherwise all rows).
    keep_rows: usize,
    /// True when the partition's data was lost to injected faults.
    lost: bool,
}

/// Resolve every partition task against the (optional) fault injector,
/// producing the scan items plus a fault summary. Without an injector
/// this degenerates to the classic partition/offset pairing and the
/// scan is bit-identical to a fault-free run.
///
/// Resolution happens up front (it is deterministic and cheap) so that
/// surviving rows get *effective*-sample offsets: positions stay dense
/// in `[0, effective_rows)`, which the diagnostic's row-range
/// subsampling relies on.
fn fault_resolved_items(
    table: &Table,
    injector: Option<&FaultInjector>,
    clock: &Clock,
) -> (Vec<ScanItem>, Option<ScanFaultSummary>) {
    let mut items = Vec::with_capacity(table.num_partitions());
    let mut offset = 0u32;
    match injector {
        None => {
            for p in table.partitions() {
                let keep_rows = p.num_rows();
                items.push(ScanItem { part: p.clone(), offset, keep_rows, lost: false });
                offset += keep_rows as u32;
            }
            (items, None)
        }
        Some(inj) => {
            let mut summary = ScanFaultSummary::default();
            for (task, p) in table.partitions().iter().enumerate() {
                let planned = p.num_rows();
                let report = inj.run_task(task, clock);
                let keep_rows = if report.lost {
                    0
                } else if let Some(keep) = report.truncate_keep {
                    if planned == 0 {
                        0
                    } else {
                        ((planned as f64 * keep).round() as usize).clamp(1, planned)
                    }
                } else {
                    planned
                };
                summary.absorb(&report, planned, keep_rows);
                items.push(ScanItem { part: p.clone(), offset, keep_rows, lost: report.lost });
                offset += keep_rows as u32;
            }
            (items, Some(summary))
        }
    }
}

struct PartitionCollect {
    rows_scanned: usize,
    groups: Vec<Group>,
    // For nested: per (group, agg) the raw inner key strings; codes are
    // assigned globally at merge time.
    nested_keys: Vec<Vec<Vec<String>>>,
    // Per chain operator, this partition's counter deltas.
    op_deltas: Vec<OpDelta>,
}

/// Sum per-partition deltas into chain-order [`OpStats`], resolving each
/// chain node's preorder id within the executed plan.
fn chain_stats(
    plan: &LogicalPlan,
    chain: &[&LogicalPlan],
    partials: &[Result<PartitionCollect>],
) -> Vec<OpStats> {
    let mut totals = vec![OpDelta::default(); chain.len()];
    for p in partials.iter().flatten() {
        for (i, d) in p.op_deltas.iter().enumerate() {
            if let Some(t) = totals.get_mut(i) {
                t.rows_in += d.rows_in;
                t.rows_out += d.rows_out;
                t.batches += d.batches;
                t.bytes += d.bytes;
                t.busy += d.busy;
            }
        }
    }
    chain
        .iter()
        .zip(totals)
        .enumerate()
        .map(|(i, (node, t))| OpStats {
            // Chain order is scan-first, so preorder ids descend; the
            // fallback preserves that when a node is not reachable from
            // `plan` (never the case for plans built by `decompose`).
            node_id: node.node_id_in(plan).unwrap_or(chain.len() - 1 - i),
            name: node.op_name(),
            detail: node.describe(),
            rows_in: t.rows_in,
            rows_out: t.rows_out,
            batches: t.batches,
            bytes: t.bytes,
            busy: t.busy,
        })
        .collect()
}

/// Collect aggregation inputs from `plan` over `table`.
///
/// Supported shapes: `Aggregate(chain)` and `Aggregate(Aggregate(chain))`
/// (one nesting level, outer without GROUP BY).
pub fn collect(plan: &LogicalPlan, table: &Table, threads: usize) -> Result<Collected> {
    collect_observed(plan, table, threads, &Clock::Real).map(|(c, _)| c)
}

/// [`collect`], additionally reporting per-operator and per-worker stats
/// measured on `clock` — the engine turns these into `op:`/`worker`
/// trace spans for `aqp-prof`.
pub fn collect_observed(
    plan: &LogicalPlan,
    table: &Table,
    threads: usize,
    clock: &Clock,
) -> Result<(Collected, CollectObs)> {
    collect_observed_faulty(plan, table, threads, clock, None).map(|(c, o, _)| (c, o))
}

/// [`collect_observed`] with deterministic fault injection: each
/// partition task is resolved against `injector`'s plan before dispatch
/// (lost partitions are skipped, truncated ones scan only a prefix),
/// and the returned [`ScanFaultSummary`] describes what was injected
/// and what survived. With `injector = None` this is exactly
/// [`collect_observed`].
pub fn collect_observed_faulty(
    plan: &LogicalPlan,
    table: &Table,
    threads: usize,
    clock: &Clock,
    injector: Option<&FaultInjector>,
) -> Result<(Collected, CollectObs, Option<ScanFaultSummary>)> {
    let shape = decompose(plan)?;
    let (top_group_by, top_aggs) = match shape.top_agg {
        LogicalPlan::Aggregate { group_by, aggs, .. } => (group_by.clone(), aggs.clone()),
        _ => {
            return Err(ExecError::PlanInvariant(
                "decompose returned a non-Aggregate top node".into(),
            ))
        }
    };

    if let Some(inner) = shape.inner_agg {
        let (inner_group_by, inner_aggs) = match inner {
            LogicalPlan::Aggregate { group_by, aggs, .. } => (group_by.clone(), aggs.clone()),
            _ => {
                return Err(ExecError::PlanInvariant(
                    "decompose returned a non-Aggregate inner node".into(),
                ))
            }
        };
        if !top_group_by.is_empty() {
            return Err(ExecError::Unsupported(
                "GROUP BY on the outer block of a nested query is not supported".into(),
            ));
        }
        if inner_aggs.len() != 1 || inner_group_by.len() != 1 {
            return Err(ExecError::Unsupported(
                "nested inner block must have exactly one aggregate and one group key".into(),
            ));
        }
        return collect_nested(
            plan,
            &shape,
            table,
            &top_aggs,
            &inner_aggs[0],
            &inner_group_by[0],
            threads,
            clock,
            injector,
        );
    }

    // --- Simple (single-level) collection. ---
    let chain = &shape.chain;
    let (items, fault_summary) = fault_resolved_items(table, injector, clock);
    let (partials, workers): (Vec<Result<PartitionCollect>>, Vec<WorkerStat>) =
        parallel_map_observed(items, threads, clock, |item| {
            let ScanItem { part, offset, keep_rows, lost } = item;
            if lost {
                return Ok(PartitionCollect {
                    rows_scanned: 0,
                    groups: Vec::new(),
                    nested_keys: Vec::new(),
                    op_deltas: Vec::new(),
                });
            }
            let rows_scanned = keep_rows;
            let truncated;
            let batch = if keep_rows < part.num_rows() {
                truncated = part.batch().slice(0, keep_rows).map_err(ExecError::Storage)?;
                &truncated
            } else {
                part.batch()
            };
            let (filtered, local_pos, op_deltas) = apply_chain(chain, batch, clock)?;
            let key_cols: Vec<usize> = top_group_by
                .iter()
                .map(|k| filtered.schema().index_of(k).map_err(ExecError::Storage))
                .collect::<Result<Vec<_>>>()?;
            // Evaluate each aggregate's argument once over the batch.
            let arg_cols: Vec<Option<aqp_storage::Column>> = top_aggs
                .iter()
                .map(|a| match &a.arg {
                    Some(e) => eval(e, &filtered).map(Some).map_err(ExecError::Sql),
                    None => Ok(None),
                })
                .collect::<Result<Vec<_>>>()?;

            let mut groups: Vec<Group> = Vec::new();
            let mut group_index: HashMap<String, usize> = HashMap::new();
            for (i, &lp) in local_pos.iter().enumerate() {
                let key = if key_cols.is_empty() {
                    String::new()
                } else {
                    group_key(&filtered, &key_cols, i)
                };
                let gi = *group_index.entry(key.clone()).or_insert_with(|| {
                    groups.push(Group {
                        key,
                        aggs: vec![AggData::default(); top_aggs.len()],
                    });
                    groups.len() - 1
                });
                let global_pos = offset + lp;
                for (ai, col) in arg_cols.iter().enumerate() {
                    match col {
                        None => {
                            groups[gi].aggs[ai].values.push(1.0); // COUNT(*)
                            groups[gi].aggs[ai].positions.push(global_pos);
                        }
                        Some(c) => {
                            if let Some(x) = c.f64_at(i) {
                                groups[gi].aggs[ai].values.push(x);
                                groups[gi].aggs[ai].positions.push(global_pos);
                            }
                        }
                    }
                }
            }
            Ok(PartitionCollect { rows_scanned, groups, nested_keys: Vec::new(), op_deltas })
        });

    let ops = chain_stats(plan, chain, &partials);
    let mut collected = merge_partials(partials, top_aggs, false, None)?;
    // SQL semantics: a global aggregate over zero surviving rows still
    // produces one output row (COUNT 0, AVG NULL).
    if top_group_by.is_empty() && collected.groups.is_empty() {
        collected.groups.push(Group {
            key: String::new(),
            aggs: vec![AggData::default(); collected.agg_exprs.len()],
        });
    }
    Ok((collected, CollectObs { ops, workers }, fault_summary))
}

#[allow(clippy::too_many_arguments)]
fn collect_nested(
    plan: &LogicalPlan,
    shape: &PlanShape<'_>,
    table: &Table,
    top_aggs: &[AggExpr],
    inner_agg: &AggExpr,
    inner_key: &str,
    threads: usize,
    clock: &Clock,
    injector: Option<&FaultInjector>,
) -> Result<(Collected, CollectObs, Option<ScanFaultSummary>)> {
    if top_aggs.iter().any(|a| a.arg.is_none() && !matches!(a.func, AggFunc::Count)) {
        return Err(ExecError::Unsupported("outer aggregate without argument".into()));
    }
    let chain = &shape.chain;
    let inner_agg_cloned = inner_agg.clone();
    let inner_key_owned = inner_key.to_owned();

    let (items, fault_summary) = fault_resolved_items(table, injector, clock);
    let (partials, workers): (Vec<Result<PartitionCollect>>, Vec<WorkerStat>) =
        parallel_map_observed(items, threads, clock, |item| {
            let ScanItem { part, offset, keep_rows, lost } = item;
            if lost {
                return Ok(PartitionCollect {
                    rows_scanned: 0,
                    groups: Vec::new(),
                    nested_keys: Vec::new(),
                    op_deltas: Vec::new(),
                });
            }
            let rows_scanned = keep_rows;
            let truncated;
            let batch = if keep_rows < part.num_rows() {
                truncated = part.batch().slice(0, keep_rows).map_err(ExecError::Storage)?;
                &truncated
            } else {
                part.batch()
            };
            let (filtered, local_pos, op_deltas) = apply_chain(chain, batch, clock)?;
            let key_col = filtered
                .schema()
                .index_of(&inner_key_owned)
                .map_err(ExecError::Storage)?;
            let arg_col = match &inner_agg_cloned.arg {
                Some(e) => Some(eval(e, &filtered).map_err(ExecError::Sql)?),
                None => None,
            };
            // One anonymous top group; values = inner agg argument per row,
            // nested key strings recorded for global code assignment.
            let mut values = Vec::with_capacity(filtered.num_rows());
            let mut positions = Vec::with_capacity(filtered.num_rows());
            let mut keys = Vec::with_capacity(filtered.num_rows());
            for (i, &lp) in local_pos.iter().enumerate() {
                let x = match &arg_col {
                    None => Some(1.0),
                    Some(c) => c.f64_at(i),
                };
                if let Some(x) = x {
                    values.push(x);
                    positions.push(offset + lp);
                    keys.push(group_key(&filtered, &[key_col], i));
                }
            }
            let group = Group {
                key: String::new(),
                aggs: vec![AggData { values, positions, nested: Some(NestedData::default()) }],
            };
            Ok(PartitionCollect {
                rows_scanned,
                groups: vec![group],
                nested_keys: vec![vec![keys]],
                op_deltas,
            })
        });

    let ops = chain_stats(plan, chain, &partials);
    let mut collected = merge_partials(partials, top_aggs.to_vec(), true, Some(inner_agg.clone()))?;
    if collected.groups.is_empty() {
        collected.groups.push(Group {
            key: String::new(),
            aggs: vec![AggData::default(); collected.agg_exprs.len()],
        });
    }
    Ok((collected, CollectObs { ops, workers }, fault_summary))
}

fn merge_partials(
    partials: Vec<Result<PartitionCollect>>,
    agg_exprs: Vec<AggExpr>,
    nested: bool,
    inner_agg: Option<AggExpr>,
) -> Result<Collected> {
    let mut pre_filter_rows = 0usize;
    let mut groups: Vec<Group> = Vec::new();
    let mut group_index: HashMap<String, usize> = HashMap::new();
    let mut code_index: HashMap<String, u32> = HashMap::new();
    let mut all_codes: Vec<u32> = Vec::new();

    for partial in partials {
        let p = partial?;
        pre_filter_rows += p.rows_scanned;
        for (local_gi, g) in p.groups.into_iter().enumerate() {
            let gi = *group_index.entry(g.key.clone()).or_insert_with(|| {
                groups.push(Group {
                    key: g.key.clone(),
                    aggs: vec![AggData::default(); g.aggs.len()],
                });
                groups.len() - 1
            });
            for (ai, a) in g.aggs.into_iter().enumerate() {
                groups[gi].aggs[ai].values.extend(a.values);
                groups[gi].aggs[ai].positions.extend(a.positions);
                if nested {
                    let keys = &p.nested_keys[local_gi][ai.min(p.nested_keys[local_gi].len() - 1)];
                    for k in keys {
                        let next = code_index.len() as u32;
                        let code = *code_index.entry(k.clone()).or_insert(next);
                        all_codes.push(code);
                    }
                }
            }
        }
    }

    if nested {
        // One top group, one collected agg-data slot: attach codes. Every
        // outer aggregate shares the same inner structure.
        let n_codes = code_index.len();
        for g in &mut groups {
            for a in &mut g.aggs {
                a.nested = Some(NestedData { codes: all_codes.clone(), n_codes });
            }
        }
        // Duplicate the single collected values vector across outer
        // aggregates if the SELECT list has several.
        if let Some(g) = groups.first_mut() {
            if g.aggs.len() == 1 && agg_exprs.len() > 1 {
                let proto = g.aggs[0].clone();
                g.aggs = vec![proto; agg_exprs.len()];
            }
        }
    }

    // Deterministic group order regardless of partition interleaving.
    groups.sort_by(|a, b| a.key.cmp(&b.key));

    Ok(Collected { pre_filter_rows, groups, agg_exprs, nested, inner_agg })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_sql::{parse_query, plan_query};
    use aqp_storage::{Column, DataType, Field, Schema};

    fn sessions() -> Table {
        let schema = Schema::new(vec![
            Field::new("city", DataType::Str),
            Field::new("time", DataType::Float),
            Field::new("user_id", DataType::Int),
        ])
        .unwrap();
        let batch = Batch::new(
            schema,
            vec![
                Column::from_strs(&["NYC", "SF", "NYC", "SF", "NYC", "LA"]),
                Column::from_f64s(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
                Column::from_i64s(vec![1, 1, 2, 2, 3, 3]),
            ],
        )
        .unwrap();
        Table::from_batch("sessions", batch, 3).unwrap()
    }

    fn collected(sql: &str, threads: usize) -> Collected {
        let t = sessions();
        let q = parse_query(sql).unwrap();
        let plan = plan_query(&q, t.schema()).unwrap();
        collect(&plan, &t, threads).unwrap()
    }

    #[test]
    fn global_aggregate_collects_all_values() {
        let c = collected("SELECT AVG(time) FROM sessions", 2);
        assert_eq!(c.pre_filter_rows, 6);
        assert_eq!(c.groups.len(), 1);
        let mut v = c.groups[0].aggs[0].values.clone();
        v.sort_by(f64::total_cmp);
        assert_eq!(v, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn filter_reduces_values() {
        let c = collected("SELECT SUM(time) FROM sessions WHERE city = 'NYC'", 1);
        let mut v = c.groups[0].aggs[0].values.clone();
        v.sort_by(f64::total_cmp);
        assert_eq!(v, vec![1.0, 3.0, 5.0]);
        assert_eq!(c.pre_filter_rows, 6); // pre-filter count is preserved
    }

    #[test]
    fn group_by_splits_groups() {
        let c = collected("SELECT city, COUNT(*) FROM sessions GROUP BY city", 2);
        assert_eq!(c.groups.len(), 3);
        let keys: Vec<&str> = c.groups.iter().map(|g| g.key.as_str()).collect();
        assert_eq!(keys, vec!["LA", "NYC", "SF"]); // sorted
        let nyc = c.groups.iter().find(|g| g.key == "NYC").unwrap();
        assert_eq!(nyc.aggs[0].values.len(), 3);
    }

    #[test]
    fn count_star_counts_rows() {
        let c = collected("SELECT COUNT(*) FROM sessions WHERE time > 4", 1);
        assert_eq!(c.groups[0].aggs[0].values, vec![1.0, 1.0]);
    }

    #[test]
    fn multiple_aggregates_share_the_scan() {
        let c = collected("SELECT AVG(time), MAX(time), COUNT(*) FROM sessions", 2);
        assert_eq!(c.groups[0].aggs.len(), 3);
        assert_eq!(c.groups[0].aggs[0].values.len(), 6);
        assert_eq!(c.groups[0].aggs[2].values, vec![1.0; 6]);
    }

    #[test]
    fn nested_collects_codes() {
        let c = collected(
            "SELECT AVG(s) FROM (SELECT SUM(time) AS s FROM sessions GROUP BY user_id)",
            1,
        );
        assert!(c.nested);
        let a = &c.groups[0].aggs[0];
        assert_eq!(a.values.len(), 6);
        let nd = a.nested.as_ref().unwrap();
        assert_eq!(nd.codes.len(), 6);
        assert_eq!(nd.n_codes, 3); // users 1, 2, 3
    }

    #[test]
    fn parallel_and_serial_agree() {
        let c1 = collected("SELECT city, AVG(time) FROM sessions GROUP BY city", 1);
        let c4 = collected("SELECT city, AVG(time) FROM sessions GROUP BY city", 4);
        assert_eq!(c1.pre_filter_rows, c4.pre_filter_rows);
        let norm = |c: &Collected| {
            c.groups
                .iter()
                .map(|g| {
                    let mut v = g.aggs[0].values.clone();
                    v.sort_by(f64::total_cmp);
                    (g.key.clone(), v)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(norm(&c1), norm(&c4));
    }

    #[test]
    fn resample_node_is_transparent_to_collection() {
        let t = sessions();
        let q = parse_query("SELECT AVG(time) FROM sessions WHERE city = 'NYC'").unwrap();
        let plan = plan_query(&q, t.schema()).unwrap();
        let spec = aqp_sql::logical::ResampleSpec::bootstrap(10, 1);
        let rewritten = aqp_sql::rewriter::insert_pushed_down(plan.clone(), &spec);
        let a = collect(&plan, &t, 1).unwrap();
        let b = collect(&rewritten, &t, 1).unwrap();
        assert_eq!(a.groups[0].aggs[0].values, b.groups[0].aggs[0].values);
    }

    #[test]
    fn tablesample_poissonized_replicates_rows() {
        let t = sessions();
        let q = parse_query("SELECT COUNT(*) FROM sessions TABLESAMPLE POISSONIZED (100)")
            .unwrap();
        let plan = plan_query(&q, t.schema()).unwrap();
        assert!(plan.explain().contains("TableSamplePoissonized"));
        let c = collect(&plan, &t, 1).unwrap();
        // 6 rows with Poisson(1) replication: expected ~6, deterministic
        // given the seed; just require a plausible non-identity outcome.
        let n = c.groups[0].aggs[0].values.len();
        assert!(n <= 20, "resample blew up: {n}");
        // Deterministic.
        let c2 = collect(&plan, &t, 1).unwrap();
        assert_eq!(c.groups[0].aggs[0].values.len(), c2.groups[0].aggs[0].values.len());
        // Rate 200 (λ=2) roughly doubles the expectation.
        let q2 = parse_query("SELECT COUNT(*) FROM sessions TABLESAMPLE POISSONIZED (200)")
            .unwrap();
        let plan2 = plan_query(&q2, t.schema()).unwrap();
        let big: usize = (0..20)
            .map(|_| collect(&plan2, &t, 1).unwrap().groups[0].aggs[0].values.len())
            .sum();
        let small: usize = (0..20)
            .map(|_| collect(&plan, &t, 1).unwrap().groups[0].aggs[0].values.len())
            .sum();
        assert!(big > small, "λ=2 ({big}) should replicate more than λ=1 ({small})");
    }

    #[test]
    fn unsupported_outer_group_by_on_nested() {
        let t = sessions();
        let q = parse_query(
            "SELECT s, AVG(s) FROM (SELECT user_id, SUM(time) AS s FROM sessions GROUP BY user_id) GROUP BY s",
        );
        if let Ok(q) = q {
            if let Ok(plan) = plan_query(&q, t.schema()) {
                assert!(collect(&plan, &t, 1).is_err());
            }
        }
    }
}

//! Result types for exact and approximate execution.

use std::time::Duration;

use aqp_diagnostics::DiagnosticReport;
use aqp_stats::ci::Ci;
use serde::{Deserialize, Serialize};

/// Which error-estimation technique actually produced the interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MethodUsed {
    /// Poissonized bootstrap.
    Bootstrap,
    /// Closed-form CLT estimate.
    ClosedForm,
    /// No interval could be produced.
    None,
}

/// Per-phase wall-clock timings, mirroring the decomposition of
/// Fig. 7/9: query execution, error-estimation overhead, diagnostics
/// overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Scan + aggregate (the approximate answer itself).
    pub query: Duration,
    /// Additional time for the error estimate.
    pub error_estimation: Duration,
    /// Additional time for the diagnostic.
    pub diagnostics: Duration,
}

impl PhaseTimings {
    /// End-to-end total.
    pub fn total(&self) -> Duration {
        self.query + self.error_estimation + self.diagnostics
    }
}

/// The approximate result for one aggregate of one group.
#[derive(Debug, Clone)]
pub struct AggResult {
    /// Aggregate display name (e.g. `AVG(time)`).
    pub name: String,
    /// The point estimate θ(S).
    pub estimate: f64,
    /// The error bars, when estimable.
    pub ci: Option<Ci>,
    /// The technique that produced `ci`.
    pub method: MethodUsed,
    /// The diagnostic verdict, when the diagnostic ran.
    pub diagnostic: Option<DiagnosticReport>,
}

impl AggResult {
    /// §4's end decision: error bars may be shown iff a CI exists and the
    /// diagnostic (if run) accepted.
    pub fn error_bars_reliable(&self) -> bool {
        self.ci.is_some() && self.diagnostic.as_ref().map(|d| d.accepted).unwrap_or(true)
    }
}

/// One group's results.
#[derive(Debug, Clone)]
pub struct GroupResult {
    /// Rendered group key (empty for the global group).
    pub key: String,
    /// One result per SELECT aggregate.
    pub aggs: Vec<AggResult>,
}

/// The full approximate query result.
#[derive(Debug, Clone)]
pub struct ApproxResult {
    /// Per-group results, sorted by key.
    pub groups: Vec<GroupResult>,
    /// Sample rows scanned.
    pub sample_rows: usize,
    /// Population rows the estimates are scaled to.
    pub population_rows: usize,
    /// Wall-clock decomposition.
    pub timings: PhaseTimings,
}

impl ApproxResult {
    /// The single scalar estimate of an ungrouped single-aggregate query.
    pub fn scalar(&self) -> Option<&AggResult> {
        match self.groups.as_slice() {
            [g] if g.aggs.len() == 1 => Some(&g.aggs[0]),
            _ => None,
        }
    }
}

/// An exact (non-approximate) query result.
#[derive(Debug, Clone)]
pub struct ExactResult {
    /// Per-group `(key, per-aggregate values)`, sorted by key.
    pub groups: Vec<(String, Vec<f64>)>,
    /// Rows scanned.
    pub rows_scanned: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl ExactResult {
    /// The single scalar value of an ungrouped single-aggregate query.
    pub fn scalar(&self) -> Option<f64> {
        match self.groups.as_slice() {
            [(_, vals)] if vals.len() == 1 => Some(vals[0]),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_total() {
        let t = PhaseTimings {
            query: Duration::from_millis(10),
            error_estimation: Duration::from_millis(20),
            diagnostics: Duration::from_millis(30),
        };
        assert_eq!(t.total(), Duration::from_millis(60));
    }

    #[test]
    fn reliability_requires_ci_and_acceptance() {
        let base = AggResult {
            name: "AVG(x)".into(),
            estimate: 1.0,
            ci: Some(Ci::new(1.0, 0.1, 0.95)),
            method: MethodUsed::Bootstrap,
            diagnostic: None,
        };
        assert!(base.error_bars_reliable());
        let mut no_ci = base.clone();
        no_ci.ci = None;
        assert!(!no_ci.error_bars_reliable());
    }

    #[test]
    fn scalar_accessors() {
        let r = ExactResult {
            groups: vec![(String::new(), vec![42.0])],
            rows_scanned: 10,
            elapsed: Duration::ZERO,
        };
        assert_eq!(r.scalar(), Some(42.0));
        let r2 = ExactResult {
            groups: vec![(String::new(), vec![1.0, 2.0])],
            rows_scanned: 10,
            elapsed: Duration::ZERO,
        };
        assert_eq!(r2.scalar(), None);
    }
}

//! Result types for exact and approximate execution.

use std::time::Duration;

use aqp_diagnostics::DiagnosticReport;
use aqp_obs::trace::stage;
use aqp_obs::QueryTrace;
use aqp_stats::ci::Ci;
use serde::{Deserialize, Serialize};

/// Which error-estimation technique actually produced the interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MethodUsed {
    /// Poissonized bootstrap.
    Bootstrap,
    /// Closed-form CLT estimate.
    ClosedForm,
    /// No interval could be produced.
    None,
}

/// Per-stage wall-clock timings, populated from the query's
/// [`QueryTrace`]. Generalizes the old three-phase decomposition of
/// Fig. 7/9 (query / error estimation / diagnostics) to arbitrarily
/// many named stages while keeping those three as accessors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// `(stage name, duration)` in execution order.
    pub stages: Vec<(String, Duration)>,
}

impl StageTimings {
    /// The top-level stages of `trace`, in recording order.
    pub fn from_trace(trace: &QueryTrace) -> Self {
        StageTimings {
            stages: trace
                .stages()
                .into_iter()
                .map(|(name, d)| (name.to_string(), d))
                .collect(),
        }
    }

    /// Append a stage.
    pub fn push(&mut self, name: &str, d: Duration) {
        self.stages.push((name.to_string(), d));
    }

    /// Total duration of every stage with this name (zero if absent).
    pub fn get(&self, name: &str) -> Duration {
        self.stages
            .iter()
            .filter(|(n, _)| n == name)
            .map(|&(_, d)| d)
            .sum()
    }

    /// Time spent producing the answer itself (everything that is not
    /// error estimation or diagnostics) — the Fig. 7/9 "query" bar.
    pub fn query(&self) -> Duration {
        self.total()
            .saturating_sub(self.error_estimation())
            .saturating_sub(self.diagnostics())
    }

    /// Additional time for the error estimate.
    pub fn error_estimation(&self) -> Duration {
        self.get(stage::ERROR_ESTIMATION)
    }

    /// Additional time for the diagnostic.
    pub fn diagnostics(&self) -> Duration {
        self.get(stage::DIAGNOSTICS)
    }

    /// Time spent replaying audited queries at full data (zero when the
    /// auditor did not fire on this query).
    pub fn audit_replay(&self) -> Duration {
        self.get(stage::AUDIT_REPLAY)
    }

    /// End-to-end total.
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|&(_, d)| d).sum()
    }
}

/// The approximate result for one aggregate of one group.
#[derive(Debug, Clone)]
pub struct AggResult {
    /// Aggregate display name (e.g. `AVG(time)`).
    pub name: String,
    /// The point estimate θ(S).
    pub estimate: f64,
    /// The error bars, when estimable.
    pub ci: Option<Ci>,
    /// The technique that produced `ci`.
    pub method: MethodUsed,
    /// The diagnostic verdict, when the diagnostic ran.
    pub diagnostic: Option<DiagnosticReport>,
}

impl AggResult {
    /// §4's end decision: error bars may be shown iff a CI exists and the
    /// diagnostic (if run) accepted.
    pub fn error_bars_reliable(&self) -> bool {
        self.ci.is_some() && self.diagnostic.as_ref().map(|d| d.accepted).unwrap_or(true)
    }
}

/// One group's results.
#[derive(Debug, Clone)]
pub struct GroupResult {
    /// Rendered group key (empty for the global group).
    pub key: String,
    /// One result per SELECT aggregate.
    pub aggs: Vec<AggResult>,
}

/// The full approximate query result.
#[derive(Debug, Clone)]
pub struct ApproxResult {
    /// Per-group results, sorted by key.
    pub groups: Vec<GroupResult>,
    /// Sample rows scanned.
    pub sample_rows: usize,
    /// Population rows the estimates are scaled to.
    pub population_rows: usize,
    /// Wall-clock decomposition, derived from `trace`.
    pub timings: StageTimings,
    /// The executor's span tree for this query.
    pub trace: QueryTrace,
    /// Present when injected faults shrank the sample: how much was
    /// lost and the factor every CI half-width was widened by.
    pub degraded: Option<aqp_faults::DegradedInfo>,
}

impl ApproxResult {
    /// The single scalar estimate of an ungrouped single-aggregate query.
    pub fn scalar(&self) -> Option<&AggResult> {
        match self.groups.as_slice() {
            [g] if g.aggs.len() == 1 => Some(&g.aggs[0]),
            _ => None,
        }
    }
}

/// An exact (non-approximate) query result.
#[derive(Debug, Clone)]
pub struct ExactResult {
    /// Per-group `(key, per-aggregate values)`, sorted by key.
    pub groups: Vec<(String, Vec<f64>)>,
    /// Rows scanned.
    pub rows_scanned: usize,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    /// The executor's span tree for this query.
    pub trace: QueryTrace,
}

impl ExactResult {
    /// The single scalar value of an ungrouped single-aggregate query.
    pub fn scalar(&self) -> Option<f64> {
        match self.groups.as_slice() {
            [(_, vals)] if vals.len() == 1 => Some(vals[0]),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timings(entries: &[(&str, u64)]) -> StageTimings {
        let mut t = StageTimings::default();
        for &(n, ms) in entries {
            t.push(n, Duration::from_millis(ms));
        }
        t
    }

    #[test]
    fn stage_timings_accessors() {
        let t = timings(&[
            (stage::SCAN_COLLECT, 8),
            (stage::POINT_ESTIMATE, 2),
            (stage::ERROR_ESTIMATION, 20),
            (stage::DIAGNOSTICS, 30),
        ]);
        assert_eq!(t.total(), Duration::from_millis(60));
        assert_eq!(t.query(), Duration::from_millis(10));
        assert_eq!(t.error_estimation(), Duration::from_millis(20));
        assert_eq!(t.diagnostics(), Duration::from_millis(30));
        assert_eq!(t.get("missing"), Duration::ZERO);
    }

    #[test]
    fn stage_timings_from_trace_takes_roots() {
        use aqp_obs::{Clock, TraceRecorder};
        let clock = Clock::mock();
        let rec = TraceRecorder::new(clock.clone());
        let a = rec.start(stage::SCAN_COLLECT);
        let _nested = rec.start("partition"); // child: not a stage
        clock.advance(Duration::from_millis(5));
        rec.end(a);
        let b = rec.start(stage::DIAGNOSTICS);
        clock.advance(Duration::from_millis(3));
        rec.end(b);
        let t = StageTimings::from_trace(&rec.finish());
        assert_eq!(t.stages.len(), 2);
        assert_eq!(t.diagnostics(), Duration::from_millis(3));
        assert_eq!(t.query(), Duration::from_millis(5));
    }

    #[test]
    fn reliability_requires_ci_and_acceptance() {
        let base = AggResult {
            name: "AVG(x)".into(),
            estimate: 1.0,
            ci: Some(Ci::new(1.0, 0.1, 0.95)),
            method: MethodUsed::Bootstrap,
            diagnostic: None,
        };
        assert!(base.error_bars_reliable());
        let mut no_ci = base.clone();
        no_ci.ci = None;
        assert!(!no_ci.error_bars_reliable());
    }

    #[test]
    fn scalar_accessors() {
        let r = ExactResult {
            groups: vec![(String::new(), vec![42.0])],
            rows_scanned: 10,
            timings: timings(&[(stage::EXACT_EXECUTION, 4)]),
            trace: QueryTrace::default(),
        };
        assert_eq!(r.scalar(), Some(42.0));
        assert_eq!(r.timings.total(), Duration::from_millis(4));
        let r2 = ExactResult {
            groups: vec![(String::new(), vec![1.0, 2.0])],
            rows_scanned: 10,
            timings: StageTimings::default(),
            trace: QueryTrace::default(),
        };
        assert_eq!(r2.scalar(), None);
    }
}

//! End-to-end integration tests spanning every crate: workload tables →
//! session → samples → SQL → approximate answers with validated error
//! bars → fallback behavior.

use reliable_aqp::workload::{conviva_sessions_table, facebook_events_table};
use reliable_aqp::{AnswerMode, AqpSession, SessionConfig};

fn sessions_session(rows: usize, sample: usize, seed: u64) -> AqpSession {
    let s = AqpSession::new(SessionConfig { seed, ..Default::default() });
    s.register_table(conviva_sessions_table(rows, 8, seed)).unwrap();
    s.build_samples("sessions", &[sample], seed ^ 0xA5).unwrap();
    s
}

#[test]
fn approximate_estimates_track_exact_values() {
    let rows = 400_000;
    let s = sessions_session(rows, 80_000, 1);
    let exact = AqpSession::new(SessionConfig::default());
    exact.register_table(conviva_sessions_table(rows, 8, 1)).unwrap();

    for sql in [
        "SELECT AVG(time) FROM sessions",
        "SELECT SUM(bytes) FROM sessions WHERE city = 'NYC'",
        "SELECT COUNT(*) FROM sessions WHERE is_mobile = true",
        "SELECT AVG(bitrate) FROM sessions WHERE time > 60",
    ] {
        let approx = s.execute(sql).unwrap();
        let truth = exact.execute(sql).unwrap();
        let (a, t) = (
            approx.scalar().unwrap_or_else(|| panic!("{sql}: no scalar")).estimate,
            truth.scalar().unwrap().estimate,
        );
        let rel = (a - t).abs() / t.abs().max(1e-12);
        assert!(rel < 0.06, "{sql}: approx {a} vs exact {t} (rel {rel})");
        // When approved, the error bars should usually cover the truth.
        if !approx.fell_back {
            let ci = approx.scalar().unwrap().ci.unwrap();
            assert!(
                ci.contains(t) || (a - t).abs() < 4.0 * ci.half_width,
                "{sql}: CI [{}, {}] vs truth {t}",
                ci.lo(),
                ci.hi()
            );
        }
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let s = sessions_session(100_000, 20_000, 9);
        let a = s.execute("SELECT AVG(time), SUM(bytes) FROM sessions WHERE city = 'LA'").unwrap();
        // Summaries contain wall-clock timings; compare the semantic parts.
        let results: Vec<(String, String)> = a
            .groups
            .iter()
            .flat_map(|g| {
                g.aggs.iter().map(move |r| {
                    (format!("{}:{}", g.key, r.name), format!("{:?} {:?}", r.estimate, r.ci))
                })
            })
            .collect();
        format!("{:?} {:?}", a.mode, results)
    };
    assert_eq!(run(), run());
}

#[test]
fn extreme_aggregates_on_heavy_tails_never_show_unvalidated_error_bars() {
    // Across several seeds, MAX over infinite-variance data must either
    // fall back or (never) show error bars the diagnostic did not accept.
    for seed in [1u64, 2, 3] {
        let s = AqpSession::new(SessionConfig { seed, ..Default::default() });
        s.register_table(facebook_events_table(300_000, 8, seed)).unwrap();
        s.build_samples("events", &[60_000], seed).unwrap();
        let a = s.execute("SELECT MAX(payload_kb) FROM events").unwrap();
        let r = a.scalar().unwrap();
        if let Some(d) = &r.diagnostic {
            assert!(d.accepted || r.ci.is_none(), "seed {seed}: rejected but CI shown");
        }
        if a.fell_back {
            // Fallback must produce the exact maximum.
            let exact_max = s
                .catalog()
                .table("events")
                .unwrap()
                .to_batch()
                .unwrap()
                .column_by_name("payload_kb")
                .unwrap()
                .to_f64_vec()
                .into_iter()
                .fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(r.estimate, exact_max, "seed {seed}");
        }
    }
}

#[test]
fn group_by_partial_fallback_preserves_all_groups() {
    let rows = 200_000;
    let s = sessions_session(rows, 20_000, 5);
    let a = s.execute("SELECT city, AVG(time) FROM sessions GROUP BY city").unwrap();
    // All 16 cities must appear even if the sample missed some (the exact
    // merge is authoritative) — at minimum the big ones.
    assert!(a.groups.len() >= 10, "only {} groups", a.groups.len());
    // Estimates must be near the exact per-group values.
    let exact = AqpSession::new(SessionConfig::default());
    exact.register_table(conviva_sessions_table(rows, 8, 5)).unwrap();
    let e = exact.execute("SELECT city, AVG(time) FROM sessions GROUP BY city").unwrap();
    for (ga, ge) in a.groups.iter().zip(e.groups.iter()) {
        assert_eq!(ga.key, ge.key);
        let rel = (ga.aggs[0].estimate - ge.aggs[0].estimate).abs() / ge.aggs[0].estimate;
        assert!(rel < 0.10, "group {}: {rel}", ga.key);
    }
}

#[test]
fn error_clause_tightening_grows_sample_usage() {
    let s = AqpSession::new(SessionConfig { seed: 11, ..Default::default() });
    s.register_table(conviva_sessions_table(400_000, 8, 11)).unwrap();
    s.build_samples("sessions", &[5_000, 20_000, 100_000], 3).unwrap();
    let loose = s.execute("SELECT AVG(time) FROM sessions WITHIN 25% ERROR").unwrap();
    let tight = s.execute("SELECT AVG(time) FROM sessions WITHIN 0.5% ERROR").unwrap();
    assert!(
        loose.sample_rows <= tight.sample_rows,
        "loose used {} rows, tight used {}",
        loose.sample_rows,
        tight.sample_rows
    );
}

#[test]
fn nested_and_udf_queries_run_through_the_whole_stack() {
    let s = sessions_session(150_000, 30_000, 21);
    for sql in [
        "SELECT AVG(s) FROM (SELECT SUM(bytes) AS s FROM sessions GROUP BY user_id)",
        "SELECT trimmed_mean(time) FROM sessions WHERE is_mobile = true",
        "SELECT geo_mean(bitrate) FROM sessions",
        "SELECT PERCENTILE(time, 90) FROM sessions",
    ] {
        let a = s.execute(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let r = a.scalar().unwrap();
        assert!(r.estimate.is_finite(), "{sql} -> {}", r.estimate);
        // Bootstrap is the only applicable technique for these shapes.
        if r.ci.is_some() {
            assert_eq!(r.method, reliable_aqp::exec::result::MethodUsed::Bootstrap, "{sql}");
        }
    }
}

#[test]
fn answer_modes_cover_the_contract() {
    // No samples -> Exact.
    let s = AqpSession::new(SessionConfig::default());
    s.register_table(conviva_sessions_table(20_000, 4, 31)).unwrap();
    assert_eq!(s.execute("SELECT COUNT(*) FROM sessions").unwrap().mode, AnswerMode::Exact);

    // Diagnostics off -> ApproximateUnchecked.
    let s2 = AqpSession::new(SessionConfig { run_diagnostics: false, ..Default::default() });
    s2.register_table(conviva_sessions_table(50_000, 4, 32)).unwrap();
    s2.build_samples("sessions", &[10_000], 1).unwrap();
    assert_eq!(
        s2.execute("SELECT AVG(time) FROM sessions").unwrap().mode,
        AnswerMode::ApproximateUnchecked
    );
}

#[test]
fn csv_ingestion_through_the_full_stack() {
    // CSV → schema inference → table → samples → approximate SQL.
    let mut csv = String::from("region,amount\n");
    let mut expected_sum = 0.0;
    for i in 0..30_000 {
        let region = ["east", "west", "north"][i % 3];
        let amount = (i % 100) as f64 + 0.5;
        if region == "east" {
            expected_sum += amount;
        }
        csv.push_str(&format!("{region},{amount}\n"));
    }
    let table =
        reliable_aqp::storage::read_csv(std::io::Cursor::new(csv), "orders", 4).unwrap();
    let s = AqpSession::new(SessionConfig { seed: 17, ..Default::default() });
    s.register_table(table).unwrap();
    s.build_samples("orders", &[6_000], 18).unwrap();
    let a = s.execute("SELECT SUM(amount) FROM orders WHERE region = 'east'").unwrap();
    let est = a.scalar().unwrap().estimate;
    let rel = (est - expected_sum).abs() / expected_sum;
    assert!(rel < 0.05, "est {est} vs {expected_sum}");
}

#[test]
fn exact_count_is_exact() {
    let s = AqpSession::new(SessionConfig::default());
    s.register_table(conviva_sessions_table(33_333, 4, 41)).unwrap();
    let a = s.execute("SELECT COUNT(*) FROM sessions").unwrap();
    assert_eq!(a.scalar().unwrap().estimate, 33_333.0);
}

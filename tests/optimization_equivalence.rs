//! The §5.3 optimizations must not change answers — only cost.
//!
//! These tests pin the semantic-equivalence claims: the naive §5.2
//! executor and the consolidated single-scan executor produce the same
//! point estimates and statistically equivalent intervals and verdicts;
//! the rewriter's operator placement does not affect collected data.

use aqp_diagnostics::DiagnosticConfig;
use aqp_exec::baseline::execute_baseline;
use aqp_exec::engine::{execute_approx, ApproxOptions, MethodChoice};
use aqp_exec::udf::UdfRegistry;
use aqp_sql::logical::ResampleSpec;
use aqp_sql::rewriter::{insert_above_scan, insert_pushed_down};
use aqp_sql::{parse_query, plan_query};
use aqp_storage::Table;
use reliable_aqp::workload::conviva_sessions_table;

fn setup(rows: usize, n: usize, seed: u64) -> (Table, Table) {
    use aqp_stats::rng::rng_from_seed;
    use aqp_stats::sampling::without_replacement_indices;
    let pop = conviva_sessions_table(rows, 8, seed);
    let mut rng = rng_from_seed(seed ^ 0x5A);
    let idx = without_replacement_indices(&mut rng, n, rows);
    let sbatch = pop.to_batch().unwrap().gather(&idx).unwrap();
    let sample = Table::from_batch("sessions", sbatch, 8).unwrap();
    (pop, sample)
}

#[test]
fn baseline_and_optimized_executors_agree() {
    let (pop, sample) = setup(60_000, 12_000, 1);
    let registry = UdfRegistry::default();
    for sql in [
        "SELECT AVG(time) FROM sessions WHERE city = 'NYC'",
        "SELECT SUM(bytes) FROM sessions",
        "SELECT MAX(time) FROM sessions WHERE is_mobile = true",
    ] {
        let q = parse_query(sql).unwrap();
        let plan = plan_query(&q, pop.schema()).unwrap();
        let opts = ApproxOptions {
            seed: 3,
            method: MethodChoice::Auto,
            bootstrap_k: 60,
            threads: 2,
            diagnostic: Some(DiagnosticConfig::scaled_to(12_000, 20)),
            ..Default::default()
        };
        let fast = execute_approx(&plan, &sample, pop.num_rows(), &registry, &opts).unwrap();
        let slow = execute_baseline(&plan, &sample, pop.num_rows(), &registry, &opts).unwrap();
        // Identical point estimates (same scan, same data).
        let (f, s) = (fast.scalar().unwrap(), slow.scalar().unwrap());
        assert_eq!(f.estimate, s.estimate, "{sql}");
        // Interval widths agree statistically (different RNG streams).
        // MAX is excluded: its bootstrap width is wildly unstable across
        // resampling streams — exactly the instability the diagnostic
        // exists to flag (both sides still agree on the verdict below).
        if !sql.contains("MAX") {
            if let (Some(fc), Some(sc)) = (&f.ci, &s.ci) {
                let rel = (fc.half_width - sc.half_width).abs() / sc.half_width.max(1e-12);
                assert!(rel < 0.6, "{sql}: hw {} vs {}", fc.half_width, sc.half_width);
            }
        }
        // Same diagnostic verdict.
        let (fd, sd) = (f.diagnostic.as_ref().unwrap(), s.diagnostic.as_ref().unwrap());
        assert_eq!(fd.accepted, sd.accepted, "{sql}");
    }
}

#[test]
fn resample_placement_does_not_change_collected_data() {
    let (pop, sample) = setup(30_000, 6_000, 2);
    for sql in [
        "SELECT AVG(time) FROM sessions WHERE city = 'LA'",
        "SELECT COUNT(*) FROM sessions WHERE time > 50",
    ] {
        let q = parse_query(sql).unwrap();
        let plan = plan_query(&q, pop.schema()).unwrap();
        let spec = ResampleSpec::bootstrap(50, 7);
        let naive_plan = insert_above_scan(plan.clone(), &spec);
        let pushed_plan = insert_pushed_down(plan.clone(), &spec);
        let a = aqp_exec::collect::collect(&plan, &sample, 2).unwrap();
        let b = aqp_exec::collect::collect(&naive_plan, &sample, 2).unwrap();
        let c = aqp_exec::collect::collect(&pushed_plan, &sample, 2).unwrap();
        assert_eq!(a.groups[0].aggs[0].values, b.groups[0].aggs[0].values, "{sql}");
        assert_eq!(a.groups[0].aggs[0].values, c.groups[0].aggs[0].values, "{sql}");
        assert_eq!(a.pre_filter_rows, c.pre_filter_rows);
    }
}

#[test]
fn bootstrap_interval_statistically_consistent_across_seeds() {
    // The optimized executor's bootstrap interval should fluctuate around
    // the same value across RNG seeds (no seed-dependent bias).
    let (pop, sample) = setup(80_000, 16_000, 3);
    let registry = UdfRegistry::default();
    let q = parse_query("SELECT PERCENTILE(time, 50) FROM sessions").unwrap();
    let plan = plan_query(&q, pop.schema()).unwrap();
    let mut widths = Vec::new();
    for seed in 0..6 {
        let opts = ApproxOptions {
            seed,
            method: MethodChoice::Bootstrap,
            bootstrap_k: 150,
            threads: 2,
            ..Default::default()
        };
        let r = execute_approx(&plan, &sample, pop.num_rows(), &registry, &opts).unwrap();
        widths.push(r.scalar().unwrap().ci.unwrap().half_width);
    }
    let mean = widths.iter().sum::<f64>() / widths.len() as f64;
    for w in &widths {
        assert!((w - mean).abs() / mean < 0.5, "width {w} vs mean {mean}: {widths:?}");
    }
}

// `weighted_aggregation_matches_physical_duplication_through_the_engine`
// migrated to the conformance corpus: count_star_pinned_clean.case pins
// the unfiltered COUNT(*) at exactly the population size with a ~zero
// half-width, and count_filtered_city_audit.case pins the binomial
// half-width of a filtered COUNT — both as exact bit patterns.

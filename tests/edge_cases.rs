//! Failure-injection and edge-case integration tests: the system must
//! degrade gracefully, never panic, and never show unvalidated error
//! bars.

use reliable_aqp::workload::conviva_sessions_table;
use reliable_aqp::{AnswerMode, AqpSession, SessionConfig};
use reliable_aqp::storage::{Batch, Column, DataType, Field, Schema, Table};

fn single_column_table(name: &str, values: Vec<f64>) -> Table {
    let schema = Schema::new(vec![Field::new("x", DataType::Float)]).unwrap();
    let batch = Batch::new(schema, vec![Column::from_f64s(values)]).unwrap();
    Table::from_batch(name, batch, 2).unwrap()
}

#[test]
fn all_rows_filtered_out() {
    let s = AqpSession::new(SessionConfig::default());
    s.register_table(conviva_sessions_table(20_000, 4, 1)).unwrap();
    s.build_samples("sessions", &[5_000], 2).unwrap();
    // No city is named "Atlantis".
    let a = s
        .execute("SELECT AVG(time) FROM sessions WHERE city = 'Atlantis'")
        .unwrap();
    let r = a.scalar().unwrap();
    // AVG of nothing: NaN estimate, no CI claimed reliable.
    assert!(r.estimate.is_nan() || r.ci.is_none(), "{r:?}");
    // COUNT of nothing must be exactly zero.
    let a = s
        .execute("SELECT COUNT(*) FROM sessions WHERE city = 'Atlantis'")
        .unwrap();
    assert_eq!(a.scalar().unwrap().estimate, 0.0);
}

#[test]
fn constant_column_gives_zero_width_intervals() {
    let s = AqpSession::new(SessionConfig::default());
    s.register_table(single_column_table("consts", vec![7.5; 50_000])).unwrap();
    s.build_samples("consts", &[10_000], 3).unwrap();
    let a = s.execute("SELECT AVG(x) FROM consts").unwrap();
    let r = a.scalar().unwrap();
    assert_eq!(r.estimate, 7.5);
    if let Some(ci) = &r.ci {
        assert!(ci.half_width < 1e-9, "constant data, hw {}", ci.half_width);
    }
}

#[test]
fn tiny_tables_and_tiny_samples() {
    let s = AqpSession::new(SessionConfig::default());
    s.register_table(single_column_table("tiny", (0..40).map(|i| i as f64).collect()))
        .unwrap();
    s.build_samples("tiny", &[10], 4).unwrap();
    // Diagnostic config can't form 100 disjoint subsamples of 10 rows;
    // the session must still answer (approximately or exactly), not panic.
    let a = s.execute("SELECT SUM(x) FROM tiny").unwrap();
    assert!(a.scalar().unwrap().estimate.is_finite());
}

#[test]
fn single_row_table() {
    let s = AqpSession::new(SessionConfig::default());
    s.register_table(single_column_table("one", vec![42.0])).unwrap();
    let a = s.execute("SELECT AVG(x) FROM one").unwrap();
    assert_eq!(a.scalar().unwrap().estimate, 42.0);
    assert_eq!(a.mode, AnswerMode::Exact);
}

#[test]
fn nulls_in_aggregated_column() {
    let schema = Schema::new(vec![
        Field::nullable("x", DataType::Float),
        Field::new("k", DataType::Int),
    ])
    .unwrap();
    let xs: Vec<Option<f64>> =
        (0..10_000).map(|i| if i % 3 == 0 { None } else { Some(i as f64) }).collect();
    let ks: Vec<i64> = (0..10_000).map(|i| (i % 4) as i64).collect();
    let batch = Batch::new(
        schema,
        vec![Column::from_opt_f64s(xs), Column::from_i64s(ks)],
    )
    .unwrap();
    let t = Table::from_batch("nullable", batch, 4).unwrap();
    let s = AqpSession::new(SessionConfig::default());
    s.register_table(t).unwrap();
    s.build_samples("nullable", &[4_000], 5).unwrap();
    // NULLs are dropped from AVG, exactly as in SQL.
    let a = s.execute("SELECT AVG(x) FROM nullable").unwrap();
    let est = a.scalar().unwrap().estimate;
    // Non-null values are i for i % 3 != 0: mean ≈ 5000.
    assert!((est - 5_000.0).abs() < 300.0, "est {est}");
}

#[test]
fn division_by_zero_in_projection_becomes_null() {
    let s = AqpSession::new(SessionConfig::default());
    s.register_table(conviva_sessions_table(10_000, 4, 6)).unwrap();
    // time / (bitrate - bitrate) divides by zero everywhere → all NULL →
    // AVG over nothing.
    let a = s
        .execute("SELECT AVG(time / (bitrate - bitrate)) FROM sessions")
        .unwrap();
    assert!(a.scalar().unwrap().estimate.is_nan());
}

#[test]
fn group_by_with_thousands_of_groups() {
    let s = AqpSession::new(SessionConfig::default());
    s.register_table(conviva_sessions_table(100_000, 8, 7)).unwrap();
    s.build_samples("sessions", &[20_000], 8).unwrap();
    // user_id has ~2000 strata; per-group results must all be finite and
    // the merge with exact values must preserve every group.
    let a = s.execute("SELECT user_id, COUNT(*) FROM sessions GROUP BY user_id").unwrap();
    assert!(a.groups.len() > 500, "groups {}", a.groups.len());
    for g in &a.groups {
        assert!(g.aggs[0].estimate.is_finite());
    }
    let total: f64 = a.groups.iter().map(|g| g.aggs[0].estimate).sum();
    assert!((total - 100_000.0).abs() / 100_000.0 < 0.02, "total {total}");
}

#[test]
fn percentile_bounds_are_clamped() {
    let s = AqpSession::new(SessionConfig::default());
    s.register_table(conviva_sessions_table(20_000, 4, 9)).unwrap();
    s.build_samples("sessions", &[5_000], 10).unwrap();
    for q in ["PERCENTILE(time, 0.5)", "PERCENTILE(time, 50)", "PERCENTILE(time, 100)"] {
        let a = s.execute(&format!("SELECT {q} FROM sessions")).unwrap();
        assert!(a.scalar().unwrap().estimate.is_finite(), "{q}");
    }
    // Out-of-range percentile is a parse error, not a panic.
    assert!(s.execute("SELECT PERCENTILE(time, 150) FROM sessions").is_err());
}

#[test]
fn repeated_execution_is_stable_under_concurrency() {
    let s = std::sync::Arc::new({
        let s = AqpSession::new(SessionConfig { seed: 11, ..Default::default() });
        s.register_table(conviva_sessions_table(60_000, 8, 11)).unwrap();
        s.build_samples("sessions", &[12_000], 12).unwrap();
        s
    });
    let mut handles = Vec::new();
    for _ in 0..4 {
        let s = std::sync::Arc::clone(&s);
        handles.push(std::thread::spawn(move || {
            let a = s.execute("SELECT AVG(time) FROM sessions WHERE city = 'NYC'").unwrap();
            format!("{:?}", a.scalar().unwrap().ci)
        }));
    }
    let results: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
}

#[test]
fn empty_strata_handled() {
    let s = AqpSession::new(SessionConfig::default());
    s.register_table(conviva_sessions_table(5_000, 4, 13)).unwrap();
    // rows_per_stratum larger than any stratum: caps at stratum size.
    s.build_stratified_sample("sessions", "site", 1_000_000, 14).unwrap();
    let a = s.execute("SELECT site, COUNT(*) FROM sessions GROUP BY site").unwrap();
    let total: f64 = a.groups.iter().map(|g| g.aggs[0].estimate).sum();
    assert_eq!(total, 5_000.0); // full-table strata: exact
}

//! End-to-end acceptance for EXPLAIN ANALYZE operator profiling: off by
//! default, deterministic under a fixed seed + mock clock, covering
//! every plan operator with nonzero row counts and per-worker entries,
//! and self-time-consistent with the enclosing stage walls (including
//! the audit-replay stage).

use std::collections::HashSet;

use reliable_aqp::audit::AuditConfig;
use reliable_aqp::obs::{stage, Clock, ObsHandle};
use reliable_aqp::prof::reconcile_stages;
use reliable_aqp::workload::conviva_sessions_table;
use reliable_aqp::{AqpAnswer, AqpSession, ExplainMode, SessionConfig};

/// The quickstart-shaped query under an isolated clock, with profiling.
fn profiled_answer(clock: Clock, explain: ExplainMode) -> AqpAnswer {
    let s = AqpSession::new(SessionConfig {
        seed: 21,
        threads: 2,
        bootstrap_k: 40,
        diagnostic_p: 50,
        obs: ObsHandle::isolated(clock),
        explain,
        ..Default::default()
    });
    s.register_table(conviva_sessions_table(40_000, 4, 21)).unwrap();
    s.build_samples("sessions", &[8_000], 7).unwrap();
    s.execute("SELECT AVG(time) FROM sessions WHERE city = 'NYC'").unwrap()
}

#[test]
fn profiling_is_off_by_default() {
    let s = AqpSession::new(SessionConfig {
        seed: 21,
        obs: ObsHandle::isolated(Clock::mock()),
        ..Default::default()
    });
    s.register_table(conviva_sessions_table(5_000, 2, 21)).unwrap();
    let a = s.execute("SELECT AVG(time) FROM sessions").unwrap();
    assert!(a.profile.is_none(), "ExplainMode::Off must not build profiles");
}

#[test]
fn profile_covers_the_plan_with_rows_and_workers() {
    let a = profiled_answer(Clock::mock(), ExplainMode::Text);
    let profile = a.profile.as_ref().expect("ExplainMode::Text builds a profile");
    let nodes = profile.nodes();
    let names: HashSet<&str> = nodes.iter().map(|n| n.name.as_str()).collect();
    assert!(
        names.len() >= 5,
        "expected at least 5 distinct operators, got {names:?}"
    );
    for op in ["Scan", "Filter", "Resample", "Aggregate", "ErrorEstimate"] {
        assert!(names.contains(op), "missing {op} in {names:?}");
    }
    // Every operator moved rows.
    for n in &nodes {
        assert!(
            n.rows_in > 0 && n.rows_out > 0,
            "operator {} (#{}) has zero rows",
            n.name,
            n.node_id
        );
    }
    // The scan saw the whole sample and reports its sampling fraction.
    let scan = profile.find("Scan").expect("scan profile");
    assert_eq!(scan.rows_out, 8_000);
    assert_eq!(scan.sample_fraction, Some(0.2), "8k of 40k rows");
    // Per-worker entries attach to the scan stage's deepest operator.
    let with_workers: Vec<_> = nodes.iter().filter(|n| !n.workers.is_empty()).collect();
    assert!(!with_workers.is_empty(), "no operator carries worker timings");
    assert!(
        with_workers.iter().any(|n| n.workers.len() == 2),
        "two configured threads must surface as two worker entries"
    );
}

#[test]
fn same_seed_profiles_bit_identically_under_the_mock_clock() {
    let a = profiled_answer(Clock::mock(), ExplainMode::Json);
    let b = profiled_answer(Clock::mock(), ExplainMode::Json);
    let (pa, pb) = (a.profile.expect("profile a"), b.profile.expect("profile b"));
    assert_eq!(pa.render_text(), pb.render_text());
    assert_eq!(pa.to_json(), pb.to_json());
    // The rendered forms are substantial, not stubs.
    assert!(pa.render_text().lines().count() >= 10, "{}", pa.render_text());
    assert!(pa.to_json().contains("\"workers\""), "{}", pa.to_json());
}

#[test]
fn operator_self_times_reconcile_with_stage_walls() {
    // Real clock: nonzero stage walls, and the scaled layout of operator
    // spans must keep per-stage operator self-time within the wall.
    let a = profiled_answer(Clock::real(), ExplainMode::Text);
    let stages = reconcile_stages(&a.trace);
    assert!(!stages.is_empty(), "no stages with operator children");
    for s in &stages {
        assert!(
            s.holds(),
            "stage {} overcommitted: ops {:?} > wall {:?}",
            s.stage,
            s.op_total,
            s.wall
        );
    }
}

#[test]
fn audit_replay_nests_its_operators_and_reconciles() {
    let s = AqpSession::new(SessionConfig {
        seed: 21,
        threads: 1,
        bootstrap_k: 40,
        diagnostic_p: 50,
        obs: ObsHandle::isolated(Clock::real()),
        explain: ExplainMode::Text,
        audit: Some(AuditConfig {
            sample_rate: 1.0, // audit every query
            seed: 17,
            window: 16,
            ..Default::default()
        }),
        ..Default::default()
    });
    s.register_table(conviva_sessions_table(20_000, 4, 21)).unwrap();
    s.build_samples("sessions", &[4_000], 7).unwrap();
    let a = s.execute("SELECT AVG(time) FROM sessions").unwrap();
    assert!(!a.fell_back, "benign AVG should stay approximate");

    // The replay's engine spans are grafted under the audit-replay span:
    // its timing is visible and its exact-execution stage reconciles.
    assert!(a.timings.audit_replay() > std::time::Duration::ZERO);
    let replay_stage = a
        .trace
        .spans
        .iter()
        .position(|sp| sp.name == stage::AUDIT_REPLAY)
        .expect("audit_replay span");
    assert!(
        a.trace
            .spans
            .iter()
            .any(|sp| sp.parent == Some(replay_stage) && sp.name == stage::EXACT_EXECUTION),
        "replay trace was not grafted under the audit_replay span"
    );
    for rec in reconcile_stages(&a.trace) {
        assert!(rec.holds(), "stage {} overcommitted", rec.stage);
    }
    // The main (approximate) execution stays the profile's root tree —
    // the replay's exact-path operators must not displace it.
    let profile = a.profile.expect("profile");
    assert!(profile.find("ErrorEstimate").is_some(), "{}", profile.render_text());
}

//! End-to-end acceptance for the continuous accuracy auditor: off by
//! default, deterministic under a fixed seed, alert-bearing on
//! miscalibrated error bars, and cheap enough to leave on (<5% of
//! wall-clock at a 10% sampling rate).

use reliable_aqp::audit::AuditConfig;
use reliable_aqp::faults::FaultConfig;
use reliable_aqp::obs::{name, stage, Clock, ObsHandle};
use reliable_aqp::workload::{conviva_sessions_table, facebook_events_table};
use reliable_aqp::{AqpSession, SessionConfig};

/// A session over the Conviva-style table with its own isolated metrics
/// registry, so counter assertions are exact rather than deltas.
fn conviva_session(obs: ObsHandle, audit: Option<AuditConfig>) -> AqpSession {
    let s = AqpSession::new(SessionConfig {
        seed: 5,
        threads: 1,
        diagnostic_p: 50,
        obs,
        audit,
        ..Default::default()
    });
    s.register_table(conviva_sessions_table(20_000, 4, 5)).unwrap();
    s.build_samples("sessions", &[4_000], 9).unwrap();
    s
}

/// A Conviva session big enough for the diagnostic to accept AVG, with
/// fault injection optionally switched on.
fn conviva_session_faulty(
    obs: ObsHandle,
    audit: Option<AuditConfig>,
    faults: Option<FaultConfig>,
) -> AqpSession {
    let s = AqpSession::new(SessionConfig {
        seed: 5,
        threads: 1,
        obs,
        audit,
        faults,
        ..Default::default()
    });
    s.register_table(conviva_sessions_table(100_000, 4, 5)).unwrap();
    s.build_samples("sessions", &[20_000], 9).unwrap();
    s
}

#[test]
fn degraded_answers_audit_into_the_true_accept_cell() {
    // Truncation-only faults: no partition is ever lost, so every query
    // completes approximately — just from a smaller effective sample,
    // with conservatively widened error bars. The auditor replays each
    // one at full data; the widened bars must still cover the truth and
    // land in the Fig. 4 TrueAccept confusion cell.
    let audit = AuditConfig { sample_rate: 1.0, seed: 23, ..Default::default() };
    let clean = conviva_session_faulty(ObsHandle::isolated(Clock::mock()), None, None);
    let clean_hw = clean
        .execute("SELECT AVG(time) FROM sessions")
        .unwrap()
        .scalar()
        .unwrap()
        .ci
        .unwrap()
        .half_width;

    let obs = ObsHandle::isolated(Clock::mock());
    let mut faults = FaultConfig::quiescent(21);
    faults.truncation_prob = 0.6;
    faults.truncation_keep = 0.5;
    let s = conviva_session_faulty(obs.clone(), Some(audit), Some(faults));

    const QUERIES: u64 = 10;
    let mut saw_degraded = false;
    for _ in 0..QUERIES {
        let a = s.execute("SELECT AVG(time) FROM sessions").unwrap();
        assert!(!a.fell_back, "truncation alone must not force an exact fallback");
        if let Some(d) = a.degraded {
            saw_degraded = true;
            assert!(d.effective_rows < d.planned_rows, "{d:?}");
            assert!(d.widen_factor > 1.0, "{d:?}");
            let hw = a.scalar().unwrap().ci.unwrap().half_width;
            assert!(hw >= clean_hw, "degraded hw {hw} narrower than clean {clean_hw}");
            assert!(
                a.trace.to_jsonl().contains("fault:truncation"),
                "degraded answer's trace lacks the fault span"
            );
        }
    }
    assert!(saw_degraded, "a 60% truncation rate over 10 queries must degrade one");

    let r = s.audit_report().unwrap();
    assert_eq!(r.audited, QUERIES, "rate 1.0 audits every query");
    let cov = r.overall.coverage.expect("scored results exist");
    assert!(cov >= 0.9, "widened degraded bars should still cover the truth, got {cov}");
    let snap = obs.metrics.snapshot();
    let true_accepts = snap.counter(name::AUDIT_TRUE_ACCEPTS).unwrap_or(0);
    assert!(
        true_accepts >= QUERIES - 1,
        "degraded-but-covered answers belong in TrueAccept, got {true_accepts}/{QUERIES}"
    );
    assert_eq!(snap.counter(name::AUDIT_FALSE_NEGATIVES).unwrap_or(0), 0);
    assert!(r.alerts.is_empty(), "well-covered degraded answers must not alert: {:?}", r.alerts);
    let degraded_queries = snap.counter(name::FAULTS_DEGRADED_QUERIES).unwrap_or(0);
    assert!(degraded_queries >= 1, "degradation metric must record the shrunken runs");
}

#[test]
fn auditing_is_off_by_default() {
    let obs = ObsHandle::isolated(Clock::mock());
    let s = conviva_session(obs.clone(), None);
    for _ in 0..5 {
        s.execute("SELECT AVG(time) FROM sessions").unwrap();
    }
    assert!(s.audit_report().is_none(), "no auditor was configured");
    // Not a single audit metric may even be registered: the feature must
    // leave zero footprint when disabled.
    let snap = obs.metrics.snapshot();
    assert!(
        snap.counters.iter().all(|(k, _)| !k.starts_with("aqp.audit.")),
        "audit counters leaked into a non-audited session: {:?}",
        snap.counters
    );
    assert_eq!(snap.counter(name::AUDIT_CONSIDERED), None);
}

#[test]
fn same_seed_audits_bit_identically() {
    let run = || {
        let obs = ObsHandle::isolated(Clock::mock());
        let s = conviva_session(
            obs.clone(),
            Some(AuditConfig {
                sample_rate: 0.3,
                seed: 17,
                window: 32,
                ..Default::default()
            }),
        );
        for i in 0..40 {
            let sql = match i % 3 {
                0 => "SELECT AVG(time) FROM sessions",
                1 => "SELECT SUM(time) FROM sessions",
                _ => "SELECT COUNT(*) FROM sessions WHERE is_mobile = true",
            };
            s.execute(sql).unwrap();
        }
        let snap = obs.metrics.snapshot();
        (s.audit_report().unwrap(), snap)
    };
    let (r1, m1) = run();
    let (r2, m2) = run();
    assert_eq!(r1.render_table(), r2.render_table());
    assert_eq!(r1.considered, 40);
    assert_eq!(r1.audited, r2.audited);
    assert!(r1.audited >= 1, "a 30% rate over 40 queries must audit something");
    for c in [
        name::AUDIT_CONSIDERED,
        name::AUDIT_AUDITED,
        name::AUDIT_RESULTS_SCORED,
        name::AUDIT_COVERAGE_HITS,
        name::AUDIT_COVERAGE_MISSES,
    ] {
        assert_eq!(m1.counter(c), m2.counter(c), "counter {c} diverged");
    }
}

#[test]
fn miscalibrated_error_bars_fire_an_alert() {
    let obs = ObsHandle::isolated(Clock::mock());
    // The paper's cautionary tale as a live workload: bootstrap MAX over
    // a Pareto tail with the diagnostic disabled. Coverage collapses.
    let s = AqpSession::new(SessionConfig {
        seed: 3,
        threads: 1,
        bootstrap_k: 40,
        run_diagnostics: false,
        obs: obs.clone(),
        audit: Some(AuditConfig {
            sample_rate: 1.0,
            window: 16,
            coverage_alert_below: 0.9,
            min_window_for_alert: 8,
            column_families: vec![("payload_kb".into(), "pareto".into())],
            ..Default::default()
        }),
        ..Default::default()
    });
    s.register_table(facebook_events_table(20_000, 4, 2)).unwrap();
    s.build_samples("events", &[4_000], 7).unwrap();
    for _ in 0..25 {
        s.execute("SELECT MAX(payload_kb) FROM events").unwrap();
    }
    let r = s.audit_report().unwrap();
    assert_eq!(r.audited, 25, "rate 1.0 audits every query");
    let cov = r.overall.coverage.expect("scored results exist");
    assert!(cov < 0.5, "MAX over a Pareto tail should not be covered, got {cov}");
    assert!(
        !r.alerts.is_empty(),
        "coverage {cov} below threshold over a full window must alert"
    );
    assert!(r.alerts.iter().any(|a| a.key.contains("pareto") || a.key == "ALL"));
    let fired = obs.metrics.snapshot().counter(name::AUDIT_ALERTS_FIRED).unwrap_or(0);
    assert!(fired >= 1, "alert counter must record the firing");
}

#[test]
fn audit_overhead_is_bounded_at_ten_percent_sampling() {
    // Bootstrap-heavy workload (trimmed_mean forces resampling), real
    // clock: the full-data replays the auditor pays for must stay under
    // 5% of total wall-clock when 10% of queries are audited.
    let obs = ObsHandle::isolated(Clock::real());
    let s = AqpSession::new(SessionConfig {
        seed: 11,
        threads: 1,
        run_diagnostics: false,
        obs: obs.clone(),
        audit: Some(AuditConfig { sample_rate: 0.1, seed: 2, ..Default::default() }),
        ..Default::default()
    });
    s.register_table(conviva_sessions_table(30_000, 4, 3)).unwrap();
    s.build_samples("sessions", &[6_000], 13).unwrap();

    let mut total = std::time::Duration::ZERO;
    let mut replay = std::time::Duration::ZERO;
    for _ in 0..50 {
        let a = s.execute("SELECT trimmed_mean(time) FROM sessions").unwrap();
        total += a.timings.total();
        replay += a.timings.get(stage::AUDIT_REPLAY);
    }
    let audited = obs.metrics.snapshot().counter(name::AUDIT_AUDITED).unwrap_or(0);
    assert!(audited >= 2, "a 10% rate over 50 queries should audit a few ({audited})");
    assert!(replay > std::time::Duration::ZERO, "fresh replays must be traced");
    let overhead = replay.as_secs_f64() / total.as_secs_f64();
    assert!(
        overhead < 0.05,
        "audit replay took {:.2}% of wall-clock (audited {audited}/50)",
        overhead * 100.0
    );
}

/// `aqp.obs.sink_dropped_lines` is absence-is-data: a session auditing
/// without a log sink must never even register the metric, and with a
/// rotating log it must account for every destroyed line exactly —
/// lines written equals lines surviving on disk plus lines counted
/// dropped.
#[test]
fn sink_dropped_lines_absent_without_log_and_exact_with_rotation() {
    use reliable_aqp::audit::AuditLogConfig;

    let dir = std::env::temp_dir().join(format!("aqp-audit-sink-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let run = |log: Option<AuditLogConfig>| {
        let obs = ObsHandle::isolated(Clock::mock());
        let s = AqpSession::new(SessionConfig {
            seed: 5,
            threads: 1,
            diagnostic_p: 50,
            obs: obs.clone(),
            audit: Some(AuditConfig { sample_rate: 1.0, seed: 3, log, ..Default::default() }),
            ..Default::default()
        });
        s.register_table(conviva_sessions_table(20_000, 4, 5)).unwrap();
        s.build_samples("sessions", &[4_000], 9).unwrap();
        for _ in 0..12 {
            s.execute("SELECT AVG(bitrate) FROM sessions").unwrap();
        }
        drop(s); // flush the audit log
        obs.metrics.snapshot()
    };

    // No log configured: auditing runs, but the counter is never
    // registered — silence here must mean "no sink", not "no losses".
    let snap = run(None);
    assert!(snap.counter(name::AUDIT_AUDITED).unwrap_or(0) >= 12);
    assert_eq!(
        snap.counter(name::OBS_SINK_DROPPED_LINES),
        None,
        "dropped-lines counter registered without a log sink"
    );

    // Control: a roomy log loses nothing; count total audit lines.
    let roomy = dir.join("roomy.jsonl");
    let _ = std::fs::remove_file(&roomy);
    let snap = run(Some(AuditLogConfig::at(&roomy)));
    assert_eq!(snap.counter(name::OBS_SINK_DROPPED_LINES), Some(0));
    let count_lines = |p: &std::path::Path| -> u64 {
        std::fs::read_to_string(p).map(|s| s.lines().count() as u64).unwrap_or(0)
    };
    let total_lines = count_lines(&roomy);
    assert!(total_lines >= 12, "each audited query appends a line ({total_lines})");

    // Tiny budget, one rotation: the same deterministic workload now
    // destroys lines, and the counter must balance the books exactly.
    let tiny = dir.join("tiny.jsonl");
    let _ = std::fs::remove_file(&tiny);
    let tiny1 = std::path::PathBuf::from(format!("{}.1", tiny.display()));
    let _ = std::fs::remove_file(&tiny1);
    let snap = run(Some(AuditLogConfig {
        path: tiny.clone(),
        max_bytes: 256,
        max_rotations: 1,
    }));
    let dropped = snap
        .counter(name::OBS_SINK_DROPPED_LINES)
        .expect("counter registered when a log is configured");
    let surviving = count_lines(&tiny) + count_lines(&tiny1);
    assert!(dropped > 0, "a 256-byte budget over {total_lines} lines must rotate losses");
    assert_eq!(
        dropped + surviving,
        total_lines,
        "dropped ({dropped}) + surviving ({surviving}) must equal lines written ({total_lines})"
    );
}

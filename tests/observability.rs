//! End-to-end observability acceptance: every `execute` yields a full
//! lifecycle trace, the metric counters record diagnostic verdicts and
//! bootstrap resamples, and a mock clock makes runs exactly
//! deterministic.
//!
//! Counters asserted against the process-global registry use
//! before/after deltas: the registry is shared across the whole test
//! binary, so absolute values are meaningless.

use reliable_aqp::obs::{name, stage, Clock, MetricsRegistry, ObsHandle};
use reliable_aqp::workload::{conviva_sessions_table, facebook_events_table};
use reliable_aqp::{AnswerMode, AqpSession, SessionConfig};

fn delta(
    after: &reliable_aqp::obs::MetricsSnapshot,
    before: &reliable_aqp::obs::MetricsSnapshot,
    counter: &str,
) -> u64 {
    after.counter(counter).unwrap_or(0) - before.counter(counter).unwrap_or(0)
}

#[test]
fn lifecycle_trace_names_every_stage() {
    let before = MetricsRegistry::global().snapshot();
    let s = AqpSession::new(SessionConfig { seed: 42, ..Default::default() });
    s.register_table(conviva_sessions_table(60_000, 8, 1)).unwrap();
    s.build_samples("sessions", &[12_000], 7).unwrap();
    let a = s.execute("SELECT AVG(time) FROM sessions").unwrap();

    let stages: Vec<&str> = a.trace.stages().iter().map(|&(n, _)| n).collect();
    assert!(stages.len() >= 5, "only {} stages: {stages:?}", stages.len());
    for want in [
        stage::PARSE,
        stage::PLAN,
        stage::SAMPLE_SELECTION,
        stage::SCAN_COLLECT,
        stage::ERROR_ESTIMATION,
        stage::DIAGNOSTICS,
    ] {
        assert!(stages.contains(&want), "missing {want} in {stages:?}");
    }
    // Timings are derived from the same trace: the per-stage sum can
    // never exceed the end-to-end wall span.
    assert!(a.timings.total() <= a.trace.total());
    assert!(a.timings.query() + a.timings.error_estimation() <= a.timings.total());

    let after = MetricsRegistry::global().snapshot();
    assert!(delta(&after, &before, name::CORE_QUERIES) >= 1);
    assert!(delta(&after, &before, name::SQL_QUERIES_PARSED) >= 1);
    assert!(delta(&after, &before, name::SQL_PLANS_REWRITTEN) >= 1);
    assert!(delta(&after, &before, name::EXEC_APPROX_QUERIES) >= 1);
    // The diagnostic ran and recorded a verdict (either way).
    assert!(
        delta(&after, &before, name::DIAG_ACCEPTED)
            + delta(&after, &before, name::DIAG_REJECTED)
            >= 1
    );
    // The verdict counters appear in the exported snapshot.
    let jsonl = after.to_jsonl();
    assert!(jsonl.contains(name::DIAG_ACCEPTED) || jsonl.contains(name::DIAG_REJECTED));
    assert!(after.histogram(name::CORE_QUERY_MS).map(|h| h.count).unwrap_or(0) >= 1);
}

#[test]
fn bootstrap_resamples_are_counted_and_exported() {
    let before = MetricsRegistry::global().snapshot();
    let s = AqpSession::new(SessionConfig { seed: 9, ..Default::default() });
    s.register_table(conviva_sessions_table(40_000, 8, 2)).unwrap();
    s.build_samples("sessions", &[8_000], 3).unwrap();
    // A UDF aggregate has no closed form: the bootstrap must run.
    let a = s.execute("SELECT trimmed_mean(time) FROM sessions").unwrap();
    assert!(a.scalar().unwrap().estimate.is_finite());

    let after = MetricsRegistry::global().snapshot();
    let resamples = delta(&after, &before, name::STATS_BOOTSTRAP_RESAMPLES);
    assert!(resamples >= 100, "expected >= bootstrap_k resamples, got {resamples}");
    assert!(after.to_jsonl().contains(name::STATS_BOOTSTRAP_RESAMPLES));
}

#[test]
fn exact_fallback_is_counted_and_traced() {
    let before = MetricsRegistry::global().snapshot();
    let s = AqpSession::new(SessionConfig { seed: 3, ..Default::default() });
    s.register_table(facebook_events_table(200_000, 8, 2)).unwrap();
    s.build_samples("events", &[40_000], 11).unwrap();
    // MAX over Pareto payloads: the diagnostic rejects, the session
    // serves the exact answer.
    let a = s.execute("SELECT MAX(payload_kb) FROM events").unwrap();
    assert_eq!(a.mode, AnswerMode::ExactFallback, "{}", a.summary());

    // The fallback is visible in the trace: a reliability gate with the
    // rejection count, and the exact execution nested beneath it.
    let gate = a.trace.find(stage::RELIABILITY_GATE).expect("gate span");
    assert_eq!(gate.attr("rejected"), Some("1"));
    assert!(a.trace.find(stage::EXACT_EXECUTION).is_some(), "no exact span");

    let after = MetricsRegistry::global().snapshot();
    assert!(delta(&after, &before, name::CORE_FALLBACKS_EXACT) >= 1);
    assert!(delta(&after, &before, name::DIAG_REJECTED) >= 1);
}

#[test]
fn mock_clock_makes_runs_exactly_deterministic() {
    let run = || {
        let obs = ObsHandle::isolated(Clock::mock());
        // threads: 1 keeps work distribution (per-worker item counts in
        // span attrs) independent of scheduling. Seed 42 at a 20% sample
        // is a known diagnostic-accepting configuration.
        let s = AqpSession::new(SessionConfig {
            seed: 42,
            threads: 1,
            obs: obs.clone(),
            ..Default::default()
        });
        s.register_table(conviva_sessions_table(200_000, 8, 1)).unwrap();
        s.build_samples("sessions", &[40_000], 7).unwrap();
        let a = s.execute("SELECT AVG(time) FROM sessions").unwrap();
        (a, obs)
    };
    let (a1, obs1) = run();
    let (a2, _) = run();
    assert_eq!(a1.mode, AnswerMode::Approximate, "{}", a1.summary());

    // Same seed + frozen mock clock: the traces are bit-identical, and
    // every duration is exactly zero.
    assert_eq!(a1.trace, a2.trace);
    assert!(a1.trace.spans.iter().all(|sp| sp.duration().is_zero()));
    assert_eq!(a1.timings.total(), std::time::Duration::ZERO);

    // The isolated registry saw exactly this one session's core
    // metrics — exact values are assertable because nothing is shared.
    let snap = obs1.metrics.snapshot();
    assert_eq!(snap.counter(name::CORE_QUERIES), Some(1));
    assert_eq!(snap.counter(name::CORE_FALLBACKS_EXACT), None);
    let h = snap.histogram(name::CORE_QUERY_MS).expect("latency histogram");
    assert_eq!(h.count, 1);
    assert_eq!(h.sum_ms, 0.0);
}

#[test]
fn histogram_quantiles_are_stable_under_interleaved_record_and_snapshot() {
    // Snapshots taken mid-stream must (a) keep the quantile estimates
    // monotone (p50 <= p95 <= p99), (b) count exactly the observations
    // recorded so far, and (c) converge on the same final state as an
    // uninterrupted histogram fed the identical sequence — taking a
    // snapshot can never perturb what is being measured.
    let interleaved = MetricsRegistry::new();
    let uninterrupted = MetricsRegistry::new();
    let a = interleaved.histogram("aqp.test.interleaved_ms");
    let b = uninterrupted.histogram("aqp.test.interleaved_ms");
    // A deterministic, shuffled-looking latency sequence spanning
    // several buckets (LCG so there's no RNG dependency).
    let mut x: u64 = 0x2545F491;
    for i in 0..500u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let ms = (x >> 33) as f64 % 250.0;
        a.record_ms(ms);
        b.record_ms(ms);
        if i % 7 == 0 {
            let snap = a.snapshot();
            assert_eq!(snap.count, i + 1, "snapshot lost or invented observations");
            assert!(
                snap.p50 <= snap.p95 && snap.p95 <= snap.p99,
                "quantiles out of order at i={i}: p50={} p95={} p99={}",
                snap.p50,
                snap.p95,
                snap.p99
            );
            assert!(snap.sum_ms >= 0.0 && snap.p99 <= 250.0);
        }
    }
    let finala = a.snapshot();
    let finalb = b.snapshot();
    assert_eq!(finala, finalb, "mid-stream snapshots perturbed the histogram");
    assert_eq!(finala.count, 500);
    // And the registry-level snapshot agrees with the handle-level one.
    let reg = interleaved.snapshot();
    assert_eq!(reg.histogram("aqp.test.interleaved_ms"), Some(&finala));
}

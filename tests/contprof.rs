//! End-to-end acceptance for continuous profiling and telemetry export:
//! zero footprint when disabled, bit-identical answers/traces/metrics
//! when enabled, an associative order-insensitive shard merge
//! (proptest), bit-stable exporter output, and a <5% fold-in overhead
//! bound on a real clock.
//!
//! The CI `profile-smoke` job re-runs [`dump_artifact_for_ci_smoke`]
//! under `PROFILE_SMOKE_SEED` and byte-diffs the folded-stack, chrome
//! trace, and Prometheus artifacts across independent processes.

use proptest::prelude::*;

use reliable_aqp::obs::{name, Clock, ObsHandle, Timestamp, TraceRecorder};
use reliable_aqp::prof::contprof::{ContProfConfig, CumulativeProfile};
use reliable_aqp::prof::export::{chrome_trace, folded_stacks, prometheus_text};
use reliable_aqp::workload::conviva_sessions_table;
use reliable_aqp::{AqpSession, OpProfile, SessionConfig};

/// A profiled session over the conviva sessions table: mock clock,
/// single-threaded, dashboards/reports class routing.
fn profiled_session(seed: u64, contprof: Option<ContProfConfig>, obs: ObsHandle) -> AqpSession {
    let s = AqpSession::new(SessionConfig {
        seed,
        threads: 1,
        bootstrap_k: 40,
        diagnostic_p: 50,
        obs,
        contprof,
        ..Default::default()
    });
    s.register_table(conviva_sessions_table(20_000, 4, seed)).unwrap();
    s.build_samples("sessions", &[4_000], 9).unwrap();
    s
}

/// The class routing every test uses: GROUP BY queries are dashboards,
/// everything else lands in the default class.
fn routing() -> ContProfConfig {
    ContProfConfig::new().with_class("dashboards", "GROUP BY")
}

/// A nested 3-op profile (Scan inside Filter inside Aggregate) whose
/// per-op self time is exactly `ms_each` milliseconds.
fn synthetic_tree(clock: &Clock, ms_each: u64) -> OpProfile {
    let rec = TraceRecorder::new(clock.clone());
    let stage = rec.start("scan_collect");
    let t0 = clock.now();
    clock.advance(std::time::Duration::from_millis(3 * ms_each));
    for (name, id, walls) in
        [("op:Scan", 2usize, 1u64), ("op:Filter", 1, 2), ("op:Aggregate", 0, 3)]
    {
        let end = Timestamp::from_nanos(t0.nanos() + walls * ms_each * 1_000_000);
        let sp = rec.record_span(name, t0, end);
        rec.attr(sp, "node_id", id);
        rec.attr(sp, "rows_in", 100);
        rec.attr(sp, "rows_out", 80);
        rec.attr(sp, "batches", 1);
        rec.attr(sp, "bytes", 640);
    }
    rec.end(stage);
    OpProfile::from_trace(&rec.finish()).expect("profile")
}

#[test]
fn contprof_is_off_by_default_with_zero_footprint() {
    let obs = ObsHandle::isolated(Clock::mock());
    let s = profiled_session(5, None, obs.clone());
    for _ in 0..5 {
        s.execute("SELECT AVG(time) FROM sessions").unwrap();
    }
    assert!(s.cumulative_profile().is_none(), "no profiler was configured");
    // Not a single contprof or memory metric may even be registered.
    let snap = obs.metrics.snapshot();
    let leaked = |k: &str| k.starts_with("aqp.prof.contprof") || k.starts_with("aqp.mem.");
    assert!(
        snap.counters.iter().all(|(k, _)| !leaked(k))
            && snap.gauges.iter().all(|(k, _)| !leaked(k))
            && snap.histograms.iter().all(|(k, _)| !leaked(k)),
        "contprof metrics leaked into a session with contprof: None"
    );
}

#[test]
fn enabling_contprof_leaves_answers_and_traces_bit_identical() {
    // The profiler observes the pipeline; it must never perturb it.
    let run = |contprof: Option<ContProfConfig>| {
        let obs = ObsHandle::isolated(Clock::mock());
        let s = profiled_session(7, contprof, obs.clone());
        let mut answers = String::new();
        let mut traces = String::new();
        for i in 0..9 {
            let sql = match i % 3 {
                0 => "SELECT AVG(time) FROM sessions",
                1 => "SELECT SUM(bytes) FROM sessions",
                _ => "SELECT city, COUNT(*) FROM sessions GROUP BY city",
            };
            let a = s.execute(sql).unwrap();
            for g in &a.groups {
                for agg in &g.aggs {
                    answers.push_str(&format!(
                        "{} {} {:x}\n",
                        g.key,
                        agg.name,
                        agg.estimate.to_bits()
                    ));
                }
            }
            traces.push_str(&a.trace.to_jsonl());
        }
        // The shared (non-contprof) metric families must agree too.
        let metrics: String = obs
            .metrics
            .snapshot()
            .to_jsonl()
            .lines()
            .filter(|l| !l.contains("aqp.prof.contprof") && !l.contains("aqp.mem."))
            .map(|l| format!("{l}\n"))
            .collect();
        (answers, traces, metrics)
    };
    let off = run(None);
    let on = run(Some(routing()));
    assert_eq!(off.0, on.0, "answers changed when continuous profiling was enabled");
    // Under `count-alloc`, per-stage mem attrs carry live allocator
    // counts that are not run-to-run reproducible (by contract the
    // feature is excluded from bit-stable artifacts); the byte compares
    // hold in default builds, which is what CI runs.
    if !reliable_aqp::obs::alloc::enabled() {
        assert_eq!(off.1, on.1, "traces changed when continuous profiling was enabled");
        assert_eq!(off.2, on.2, "shared metrics changed when continuous profiling was enabled");
    }
}

#[test]
fn cumulative_profile_accumulates_and_exports_deterministically() {
    let run = || {
        let obs = ObsHandle::isolated(Clock::mock());
        let s = profiled_session(11, Some(routing()), obs.clone());
        for _ in 0..4 {
            s.execute("SELECT AVG(time) FROM sessions").unwrap();
            s.execute("SELECT city, COUNT(*) FROM sessions GROUP BY city").unwrap();
        }
        let cum = s.cumulative_profile().expect("contprof is on");
        (cum.to_json(), folded_stacks(&cum), prometheus_text(&obs.metrics.snapshot()), cum)
    };
    let (json_a, folded_a, prom_a, cum) = run();
    let (json_b, folded_b, prom_b, _) = run();
    assert_eq!(json_a, json_b, "cumulative JSON must be bit-stable across runs");
    assert_eq!(folded_a, folded_b, "folded stacks must be bit-stable across runs");
    if !reliable_aqp::obs::alloc::enabled() {
        // The `aqp.mem.*` gauges carry live allocator counts under
        // `count-alloc`; the exposition is bit-stable in default builds.
        assert_eq!(prom_a, prom_b, "Prometheus text must be bit-stable across runs");
    }
    assert_eq!(cum.queries_observed(), 8);
    assert_eq!(cum.classes(), 2, "AVG → default, GROUP BY → dashboards");
    assert!(cum.paths() > 0);
    // Every folded line is `class;Op[;Op...] <self_ns>`.
    for line in folded_a.lines() {
        let (stack, self_ns) = line.rsplit_once(' ').expect("folded line shape");
        assert!(stack.contains(';'), "stack `{stack}` must start with its class");
        self_ns.parse::<u64>().expect("self time is integral nanoseconds");
    }
}

#[test]
fn chrome_trace_export_is_bit_stable_and_well_formed() {
    let run = || {
        let obs = ObsHandle::isolated(Clock::mock());
        let s = profiled_session(13, Some(routing()), obs);
        let a = s.execute("SELECT AVG(time) FROM sessions").unwrap();
        chrome_trace(&a.trace)
    };
    let (a, b) = (run(), run());
    if !reliable_aqp::obs::alloc::enabled() {
        // Mem attrs on stage spans are live allocator counts under
        // `count-alloc`; the export is bit-stable in default builds.
        assert_eq!(a, b, "chrome trace must be bit-stable across runs");
    }
    assert!(a.starts_with("{\"traceEvents\":["), "{a}");
    assert!(a.ends_with("]}\n"), "{a}");
    assert!(a.contains("\"ph\":\"X\""), "complete events only: {a}");
    assert!(a.contains("\"name\":\"op:Scan\""), "operator spans exported: {a}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The shard merge is associative and order-insensitive: folding the
    /// same shards in any grouping and any order yields identical state
    /// and identical exported bytes.
    #[test]
    fn merge_is_associative_and_order_insensitive(
        ops in prop::collection::vec((0usize..3, 1u64..6), 1..12),
        order in prop::collection::vec(0usize..3, 3..4),
    ) {
        let clock = Clock::mock();
        let classes = ["interactive", "reports", "batch"];
        let mut shards = [
            CumulativeProfile::new(),
            CumulativeProfile::new(),
            CumulativeProfile::new(),
        ];
        for (i, &(class, ms)) in ops.iter().enumerate() {
            let tree = synthetic_tree(&clock, ms);
            shards[i % 3].observe(classes[class], std::slice::from_ref(&tree));
        }
        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut left = shards[0].clone();
        left.merge(&shards[1]);
        left.merge(&shards[2]);
        let mut bc = shards[1].clone();
        bc.merge(&shards[2]);
        let mut right = shards[0].clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // Order-insensitivity: any shard order yields the same bytes.
        let mut permuted = CumulativeProfile::new();
        for &i in &order {
            permuted.merge(&shards[i]);
        }
        let mut reference = CumulativeProfile::new();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        for &i in &sorted {
            reference.merge(&shards[i]);
        }
        prop_assert_eq!(permuted.to_json(), reference.to_json());
        prop_assert_eq!(folded_stacks(&permuted), folded_stacks(&reference));
    }
}

#[test]
fn contprof_overhead_is_bounded_at_five_percent() {
    // Real clock, bootstrap-heavy workload: folding profiles into the
    // cumulative state must stay under 5% of total query wall-clock.
    let obs = ObsHandle::isolated(Clock::real());
    let s = AqpSession::new(SessionConfig {
        seed: 11,
        threads: 1,
        run_diagnostics: false,
        obs: obs.clone(),
        contprof: Some(routing()),
        ..Default::default()
    });
    s.register_table(conviva_sessions_table(30_000, 4, 3)).unwrap();
    s.build_samples("sessions", &[6_000], 13).unwrap();
    for _ in 0..50 {
        s.execute("SELECT trimmed_mean(time) FROM sessions").unwrap();
    }
    let snap = obs.metrics.snapshot();
    let query_ms = snap.histogram(name::CORE_QUERY_MS).expect("queries ran").sum_ms;
    let eval = snap.histogram(name::PROF_CONTPROF_EVAL_MS).expect("the profiler ran");
    assert!(eval.count >= 50, "every query must be folded in ({})", eval.count);
    let overhead = eval.sum_ms / (query_ms + eval.sum_ms);
    assert!(
        overhead < 0.05,
        "profile fold-in took {:.2}% of wall-clock ({:.2}ms of {:.2}ms)",
        overhead * 100.0,
        eval.sum_ms,
        query_ms
    );
}

/// Hook for the CI `profile-smoke` job: when `PROFILE_SMOKE_SEED` is
/// set, run a fixed-seed profiled workload and write the folded-stack,
/// chrome trace, and Prometheus artifacts to `target/profile-dumps/` so
/// the job can byte-diff them across independent processes.
#[test]
fn dump_artifact_for_ci_smoke() {
    let Some(seed) = std::env::var("PROFILE_SMOKE_SEED").ok().and_then(|s| s.parse::<u64>().ok())
    else {
        return;
    };
    let dir = std::path::Path::new("target").join("profile-dumps");
    std::fs::create_dir_all(&dir).unwrap();
    let obs = ObsHandle::isolated(Clock::mock());
    let s = profiled_session(seed, Some(routing()), obs.clone());
    let mut last_trace = None;
    for i in 0..12 {
        let sql = match i % 3 {
            0 => "SELECT AVG(time) FROM sessions",
            1 => "SELECT SUM(bytes) FROM sessions",
            _ => "SELECT city, COUNT(*) FROM sessions GROUP BY city",
        };
        last_trace = Some(s.execute(sql).unwrap().trace);
    }
    let cum = s.cumulative_profile().expect("contprof is on");
    std::fs::write(dir.join(format!("seed_{seed}.folded")), folded_stacks(&cum)).unwrap();
    std::fs::write(
        dir.join(format!("seed_{seed}.chrome.json")),
        chrome_trace(&last_trace.expect("queries ran")),
    )
    .unwrap();
    std::fs::write(
        dir.join(format!("seed_{seed}.prom")),
        prometheus_text(&obs.metrics.snapshot()),
    )
    .unwrap();
}

//! End-to-end acceptance for self-hosted telemetry analytics: zero
//! footprint when disabled, bit-identical answers/traces/metrics for the
//! base workload when enabled, approximate answers with error bars over
//! the `_telemetry.*` tables, a recursion guard that keeps introspection
//! queries out of their own telemetry, and a <5% fold-in overhead bound
//! on a real clock.
//!
//! The CI `introspect-smoke` job re-runs [`dump_artifact_for_ci_smoke`]
//! under `INTROSPECT_SMOKE_SEED` and byte-diffs the rendered answers
//! (estimates, CIs, and diagnostic verdicts as exact bit patterns)
//! across independent processes.

use reliable_aqp::faults::FaultConfig;
use reliable_aqp::obs::{name, Clock, ObsHandle};
use reliable_aqp::workload::conviva_sessions_table;
use reliable_aqp::{AqpAnswer, AqpSession, IntrospectConfig, SessionConfig};

/// An introspected session over the conviva sessions table: mock clock,
/// single-threaded, deterministic per `seed`.
fn introspected_session(
    seed: u64,
    introspect: Option<IntrospectConfig>,
    obs: ObsHandle,
) -> AqpSession {
    let s = AqpSession::new(SessionConfig {
        seed,
        threads: 1,
        bootstrap_k: 40,
        diagnostic_p: 50,
        obs,
        introspect,
        ..Default::default()
    });
    s.register_table(conviva_sessions_table(20_000, 4, seed)).unwrap();
    s.build_samples("sessions", &[4_000], 9).unwrap();
    s
}

/// The introspection routing every test uses: GROUP BY queries are
/// dashboards, everything else lands in the default class.
fn routing() -> IntrospectConfig {
    IntrospectConfig::new().with_class("dashboards", "GROUP BY")
}

/// Render an answer as exact bit patterns: estimates, CI bounds, and
/// diagnostic verdicts. Any cross-process drift becomes a byte diff.
fn render(a: &AqpAnswer) -> String {
    let mut out = format!(
        "mode={:?} sample={}/{} fell_back={}\n",
        a.mode, a.sample_rows, a.population_rows, a.fell_back
    );
    for g in &a.groups {
        for agg in &g.aggs {
            let ci = match &agg.ci {
                Some(c) => format!(
                    "{:x}±{:x}@{:x}",
                    c.center.to_bits(),
                    c.half_width.to_bits(),
                    c.confidence.to_bits()
                ),
                None => "-".to_string(),
            };
            let verdict = match &agg.diagnostic {
                Some(d) if d.accepted => "ok",
                Some(_) => "rejected",
                None => "-",
            };
            out.push_str(&format!(
                "{} {} {:x} ci={} diag={}\n",
                g.key,
                agg.name,
                agg.estimate.to_bits(),
                ci,
                verdict
            ));
        }
    }
    out
}

#[test]
fn introspect_is_off_by_default_with_zero_footprint() {
    let obs = ObsHandle::isolated(Clock::mock());
    let s = introspected_session(5, None, obs.clone());
    for _ in 0..5 {
        s.execute("SELECT AVG(time) FROM sessions").unwrap();
    }
    // Without the pipeline, the reserved namespace does not exist.
    assert!(
        s.execute("SELECT COUNT(*) FROM _telemetry.queries").is_err(),
        "_telemetry tables must not exist when introspect is None"
    );
    // Not a single introspect (or sink-drop) metric may even be registered.
    let snap = obs.metrics.snapshot();
    let leaked =
        |k: &str| k.starts_with("aqp.introspect.") || k == name::OBS_SINK_DROPPED_LINES;
    assert!(
        snap.counters.iter().all(|(k, _)| !leaked(k))
            && snap.gauges.iter().all(|(k, _)| !leaked(k))
            && snap.histograms.iter().all(|(k, _)| !leaked(k)),
        "introspect metrics leaked into a session with introspect: None"
    );
}

#[test]
fn enabling_introspection_leaves_answers_and_traces_bit_identical() {
    // The pipeline observes the session; it must never perturb it.
    let run = |introspect: Option<IntrospectConfig>| {
        let obs = ObsHandle::isolated(Clock::mock());
        let s = introspected_session(7, introspect, obs.clone());
        let mut answers = String::new();
        let mut traces = String::new();
        for i in 0..9 {
            let sql = match i % 3 {
                0 => "SELECT AVG(time) FROM sessions",
                1 => "SELECT SUM(bytes) FROM sessions",
                _ => "SELECT city, COUNT(*) FROM sessions GROUP BY city",
            };
            let a = s.execute(sql).unwrap();
            answers.push_str(&render(&a));
            traces.push_str(&a.trace.to_jsonl());
        }
        // The shared (non-introspect) metric families must agree too.
        let metrics: String = obs
            .metrics
            .snapshot()
            .to_jsonl()
            .lines()
            .filter(|l| !l.contains("aqp.introspect."))
            .map(|l| format!("{l}\n"))
            .collect();
        (answers, traces, metrics)
    };
    let off = run(None);
    let on = run(Some(routing()));
    assert_eq!(off.0, on.0, "answers changed when introspection was enabled");
    if !reliable_aqp::obs::alloc::enabled() {
        assert_eq!(off.1, on.1, "traces changed when introspection was enabled");
        assert_eq!(off.2, on.2, "shared metrics changed when introspection was enabled");
    }
}

#[test]
fn telemetry_tables_answer_approximately_with_error_bars() {
    let obs = ObsHandle::isolated(Clock::mock());
    let s = introspected_session(7, Some(routing()), obs.clone());
    for i in 0..60 {
        let sql = match i % 3 {
            0 => "SELECT AVG(time) FROM sessions",
            1 => "SELECT SUM(bytes) FROM sessions",
            _ => "SELECT city, COUNT(*) FROM sessions GROUP BY city",
        };
        s.execute(sql).unwrap();
    }
    // Enough spans accumulated to cross the sampling threshold: the
    // introspection query runs approximately, with CIs and verdicts.
    let a = s
        .execute("SELECT stage, AVG(wall_ms) FROM _telemetry.spans GROUP BY stage")
        .unwrap();
    assert!(!a.fell_back, "telemetry query should answer from its sample");
    assert!(a.sample_rows < a.population_rows, "a strict sample must be in play");
    assert!(!a.groups.is_empty());
    // Under the mock clock span wall times are all zero, so error bars
    // with real width come from a column with genuine variance.
    let d = s.execute("SELECT AVG(depth) FROM _telemetry.spans").unwrap();
    let agg = d.scalar().expect("scalar AVG(depth)");
    assert!(
        agg.ci.as_ref().is_some_and(|c| c.half_width > 0.0),
        "error bars must accompany telemetry estimates: {:?}",
        agg.ci
    );
    // Percentiles over telemetry work too.
    let p = s
        .execute("SELECT stage, PERCENTILE(wall_ms, 95) FROM _telemetry.spans GROUP BY stage")
        .unwrap();
    assert!(!p.groups.is_empty());
    let snap = obs.metrics.snapshot();
    assert_eq!(snap.counter(name::INTROSPECT_QUERIES_SERVED), Some(3));
    assert!(snap.counter(name::INTROSPECT_QUERIES_FOLDED).unwrap_or(0) >= 60);
    assert!(snap.counter(name::INTROSPECT_SYNCS).unwrap_or(0) >= 1);
}

#[test]
fn recursion_guard_keeps_introspection_out_of_its_own_telemetry() {
    let obs = ObsHandle::isolated(Clock::mock());
    let s = introspected_session(11, Some(routing()), obs);
    for _ in 0..10 {
        s.execute("SELECT AVG(time) FROM sessions").unwrap();
    }
    let count = |s: &AqpSession| {
        let a = s.execute("SELECT COUNT(*) FROM _telemetry.queries").unwrap();
        a.scalar().expect("scalar count").estimate
    };
    let first = count(&s);
    let second = count(&s);
    let third = count(&s);
    assert_eq!(first, 10.0, "ten base queries were folded");
    assert_eq!(first, second, "introspection queries must not fold themselves");
    assert_eq!(second, third);
}

#[test]
fn allow_recursive_opt_in_folds_introspection_queries() {
    let obs = ObsHandle::isolated(Clock::mock());
    let s = introspected_session(11, Some(routing().with_recursive(true)), obs);
    for _ in 0..10 {
        s.execute("SELECT AVG(time) FROM sessions").unwrap();
    }
    let count = |s: &AqpSession| {
        let a = s.execute("SELECT COUNT(*) FROM _telemetry.queries").unwrap();
        a.scalar().expect("scalar count").estimate
    };
    let first = count(&s);
    let second = count(&s);
    assert_eq!(first, 10.0, "the serving query folds after it answers");
    assert_eq!(second, 11.0, "with allow_recursive the previous query is visible");
}

#[test]
fn introspect_overhead_is_bounded_at_five_percent() {
    // Real clock, bootstrap-heavy workload: folding telemetry into the
    // ring buffers must stay under 5% of total query wall-clock.
    let obs = ObsHandle::isolated(Clock::real());
    let s = AqpSession::new(SessionConfig {
        seed: 11,
        threads: 1,
        run_diagnostics: false,
        obs: obs.clone(),
        introspect: Some(routing()),
        ..Default::default()
    });
    s.register_table(conviva_sessions_table(30_000, 4, 3)).unwrap();
    s.build_samples("sessions", &[6_000], 13).unwrap();
    for _ in 0..50 {
        s.execute("SELECT trimmed_mean(time) FROM sessions").unwrap();
    }
    let snap = obs.metrics.snapshot();
    let query_ms = snap.histogram(name::CORE_QUERY_MS).expect("queries ran").sum_ms;
    let eval = snap.histogram(name::INTROSPECT_EVAL_MS).expect("the pipeline ran");
    assert!(eval.count >= 50, "every query must be folded in ({})", eval.count);
    let overhead = eval.sum_ms / (query_ms + eval.sum_ms);
    assert!(
        overhead < 0.05,
        "telemetry fold-in took {:.2}% of wall-clock ({:.2}ms of {:.2}ms)",
        overhead * 100.0,
        eval.sum_ms,
        query_ms
    );
}

/// Hook for the CI `introspect-smoke` job: when `INTROSPECT_SMOKE_SEED`
/// is set, run a fixed-seed fault-injected workload, query the system's
/// own telemetry, and write the bit-exact rendering to
/// `target/introspect-dumps/` so the job can byte-diff it across
/// independent processes.
#[test]
fn dump_artifact_for_ci_smoke() {
    let Some(seed) =
        std::env::var("INTROSPECT_SMOKE_SEED").ok().and_then(|s| s.parse::<u64>().ok())
    else {
        return;
    };
    let dir = std::path::Path::new("target").join("introspect-dumps");
    std::fs::create_dir_all(&dir).unwrap();
    let obs = ObsHandle::isolated(Clock::mock());
    // Fault draws are fixed per (cfg.seed, task, attempt): seed 3 is a
    // stream where the truncation draw fires, so `_telemetry.faults` is
    // populated in the artifact regardless of the workload seed.
    let mut faults = FaultConfig::quiescent(3);
    faults.truncation_prob = 0.25;
    faults.truncation_keep = 0.5;
    faults.transient_error_prob = 0.05;
    let s = AqpSession::new(SessionConfig {
        seed,
        threads: 1,
        bootstrap_k: 40,
        diagnostic_p: 50,
        obs,
        faults: Some(faults),
        introspect: Some(routing()),
        ..Default::default()
    });
    s.register_table(conviva_sessions_table(20_000, 4, seed)).unwrap();
    s.build_samples("sessions", &[4_000], 9).unwrap();
    for i in 0..60 {
        let sql = match i % 3 {
            0 => "SELECT AVG(time) FROM sessions",
            1 => "SELECT SUM(bytes) FROM sessions",
            _ => "SELECT city, COUNT(*) FROM sessions GROUP BY city",
        };
        // Transient faults surface as errors by design; retention of the
        // successful queries is what the artifact pins down.
        let _ = s.execute(sql);
    }
    let mut out = String::new();
    for sql in [
        "SELECT stage, AVG(wall_ms) FROM _telemetry.spans GROUP BY stage",
        "SELECT stage, PERCENTILE(wall_ms, 95) FROM _telemetry.spans GROUP BY stage",
        "SELECT AVG(depth) FROM _telemetry.spans",
        "SELECT class, AVG(wall_ms) FROM _telemetry.queries GROUP BY class",
        "SELECT kind, COUNT(*) FROM _telemetry.faults GROUP BY kind",
        "SELECT COUNT(*) FROM _telemetry.queries",
    ] {
        out.push_str(&format!("== {sql}\n"));
        out.push_str(&render(&s.execute(sql).unwrap()));
    }
    std::fs::write(dir.join(format!("seed_{seed}.txt")), out).unwrap();
}

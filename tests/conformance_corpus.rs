//! Tier-1 gate for the golden conformance corpus (DESIGN §17).
//!
//! Runs the same verification `cargo xtask corpus verify` performs, in
//! process: every committed `tests/corpus/*.case` must re-render its
//! `[expect]` body byte-identically, every `answers_match` invariant
//! must hold, the differential oracle's corpus-wide CI coverage must
//! sit within tolerance of nominal, and a re-record (bless) into a
//! scratch directory must reproduce the committed bytes exactly.

use std::path::{Path, PathBuf};

use aqp_conformance::{run_corpus, CorpusMode};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// The ISSUE's floor: the corpus must stay at least this large so the
/// vectorized rewrite is verified against the full behavior matrix.
const MIN_CASES: usize = 60;

#[test]
fn corpus_verifies_bit_identically() {
    let report = run_corpus(&corpus_dir(), &CorpusMode::Verify).expect("corpus loads");
    assert!(
        report.cases.len() >= MIN_CASES,
        "corpus shrank to {} cases (< {MIN_CASES})",
        report.cases.len()
    );
    for c in &report.cases {
        assert!(c.pass, "case {} drifted: {}", c.name, c.detail);
    }
    for (a, b, ok) in &report.matches {
        assert!(ok, "answers_match violated: {a} != {b}");
    }
    assert!(report.pass, "corpus report failed:\n{}", report.render());
}

#[test]
fn oracle_coverage_is_within_tolerance_of_nominal() {
    let report = run_corpus(&corpus_dir(), &CorpusMode::Verify).expect("corpus loads");
    assert!(report.oracle.reliable >= 50, "oracle starved: only {} claimed-reliable CIs", report.oracle.reliable);
    let dev = (report.empirical - report.nominal).abs();
    assert!(
        dev <= aqp_conformance::runner::COVERAGE_TOLERANCE + 1e-12,
        "empirical coverage {:.4} deviates {:.4} from nominal {:.4}",
        report.empirical,
        dev,
        report.nominal
    );
}

#[test]
fn bless_reproduces_committed_corpus_byte_for_byte() {
    let dir = corpus_dir();
    let scratch = Path::new(env!("CARGO_MANIFEST_DIR")).join("target/corpus-rebless-test");
    if scratch.exists() {
        std::fs::remove_dir_all(&scratch).expect("clear scratch");
    }
    let report =
        run_corpus(&dir, &CorpusMode::Bless { out: Some(scratch.clone()) }).expect("bless runs");
    assert!(report.pass, "bless-mode report failed:\n{}", report.render());
    for entry in std::fs::read_dir(&dir).expect("read corpus dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().map(|e| e == "case").unwrap_or(false) {
            let name = path.file_name().expect("file name");
            let committed = std::fs::read(&path).expect("read committed");
            let reblessed =
                std::fs::read(scratch.join(name)).expect("re-record exists for every case");
            assert_eq!(
                committed,
                reblessed,
                "bless drift in {:?}: re-recorded bytes differ from committed",
                name
            );
        }
    }
}

//! The fault matrix: sweep {fault kind} × {recovery policy} ×
//! {aggregate} over the approximate executor and prove, for every cell,
//!
//! * **liveness** — the query completes with an answer or a typed
//!   `ExecError::Degraded` / `ExecError::Unrecoverable`; it never hangs
//!   and never panics,
//! * **determinism** — the same fault seed and query seed produce a
//!   bit-identical answer and an identical JSONL trace, and
//! * **coverage soundness** — degraded error bars are never narrower
//!   than fault-free ones, and their empirical coverage over a
//!   fixed-seed harness stays within two points of the fault-free run.
//!
//! The CI `fault-smoke` job re-runs [`dump_trace_for_ci_smoke`] under
//! `FAULT_MATRIX_SEED` and diffs the emitted traces across processes.

use reliable_aqp::exec::{execute_approx, execute_exact, ApproxOptions, ExecError, UdfRegistry};
use reliable_aqp::faults::{FaultConfig, RecoveryPolicy, StragglerDelay};
use reliable_aqp::obs::{Clock, ObsHandle};
use reliable_aqp::sql::{parse_query, plan_query, LogicalPlan};
use reliable_aqp::stats::rng::rng_from_seed;
use reliable_aqp::stats::sampling::with_replacement_indices;
use reliable_aqp::storage::Table;
use reliable_aqp::workload::conviva_sessions_table;

const POPULATION_ROWS: usize = 400_000;

/// The fixed sample table every matrix cell runs against: 4 000 rows in
/// 8 partitions, standing in for a stored sample of a 400 000-row table.
fn sample_table(seed: u64) -> Table {
    conviva_sessions_table(4_000, 8, seed)
}

fn plan_for(sql: &str, table: &Table) -> LogicalPlan {
    plan_query(&parse_query(sql).unwrap(), table.schema()).unwrap()
}

/// Single-threaded, mock-clocked options so traces are reproducible.
fn opts_with(faults: Option<FaultConfig>, seed: u64) -> ApproxOptions {
    ApproxOptions {
        seed,
        threads: 1,
        obs: ObsHandle::isolated(Clock::mock()),
        faults,
        ..Default::default()
    }
}

/// One config per fault kind, all on the same plan seed.
fn kind_configs(seed: u64) -> Vec<(&'static str, FaultConfig)> {
    let mut death = FaultConfig::quiescent(seed);
    death.worker_death_prob = 0.3;
    let mut transient = FaultConfig::quiescent(seed);
    transient.transient_error_prob = 0.4;
    let mut corrupt = FaultConfig::quiescent(seed);
    corrupt.corruption_prob = 0.3;
    let mut trunc = FaultConfig::quiescent(seed);
    trunc.truncation_prob = 0.5;
    trunc.truncation_keep = 0.4;
    let mut straggle = FaultConfig::quiescent(seed);
    straggle.straggler_prob = 0.6;
    straggle.straggler_delay = StragglerDelay::HeavyTail { mean_ms: 40.0, sigma: 1.2 };
    vec![
        ("worker_death", death),
        ("transient_error", transient),
        ("corruption", corrupt),
        ("truncation", trunc),
        ("straggler", straggle),
    ]
}

fn policies() -> Vec<(&'static str, RecoveryPolicy)> {
    vec![
        ("retry_only", RecoveryPolicy { speculative: false, ..Default::default() }),
        ("retry_speculative", RecoveryPolicy::default()),
        (
            "degrade_freely",
            RecoveryPolicy { max_retries: 1, max_lost_fraction: 1.0, ..Default::default() },
        ),
        ("strict", RecoveryPolicy { max_retries: 0, max_lost_fraction: 0.0, ..Default::default() }),
    ]
}

const AGGREGATES: [&str; 3] = [
    "SELECT AVG(time) FROM sessions",
    "SELECT SUM(bytes) FROM sessions",
    "SELECT COUNT(*) FROM sessions",
];

/// The matrix itself: every cell must terminate in a well-typed way and
/// be bit-identical on a rerun with the same seeds.
#[test]
fn matrix_liveness_and_determinism() {
    let table = sample_table(42);
    let registry = UdfRegistry::default();
    for (kind, base) in kind_configs(7) {
        for (policy_name, policy) in policies() {
            let mut cfg = base.clone();
            cfg.recovery = policy;
            for sql in AGGREGATES {
                let cell = format!("{kind}/{policy_name}/{sql}");
                let plan = plan_for(sql, &table);
                let run = || {
                    execute_approx(
                        &plan,
                        &table,
                        POPULATION_ROWS,
                        &registry,
                        &opts_with(Some(cfg.clone()), 11),
                    )
                };
                let a = run();
                let b = run();
                match (&a, &b) {
                    (Ok(ra), Ok(rb)) => {
                        assert_eq!(ra.groups.len(), rb.groups.len(), "{cell}");
                        for (ga, gb) in ra.groups.iter().zip(&rb.groups) {
                            for (x, y) in ga.aggs.iter().zip(&gb.aggs) {
                                assert!(x.estimate.is_finite(), "{cell}: non-finite estimate");
                                assert_eq!(
                                    x.estimate.to_bits(),
                                    y.estimate.to_bits(),
                                    "{cell}: estimates diverged across identical runs"
                                );
                                match (&x.ci, &y.ci) {
                                    (Some(cx), Some(cy)) => {
                                        assert!(cx.half_width.is_finite(), "{cell}");
                                        assert_eq!(
                                            cx.half_width.to_bits(),
                                            cy.half_width.to_bits(),
                                            "{cell}: half-widths diverged"
                                        );
                                    }
                                    (None, None) => {}
                                    _ => panic!("{cell}: CI presence diverged"),
                                }
                            }
                        }
                        assert_eq!(
                            ra.trace.to_jsonl(),
                            rb.trace.to_jsonl(),
                            "{cell}: traces diverged across identical runs"
                        );
                        match (ra.degraded, rb.degraded) {
                            (Some(da), Some(db)) => {
                                assert_eq!(da.effective_rows, db.effective_rows, "{cell}");
                                assert!(da.widen_factor >= 1.0, "{cell}: narrowing widen factor");
                                assert!(
                                    da.effective_rows <= da.planned_rows,
                                    "{cell}: effective rows exceed planned"
                                );
                            }
                            (None, None) => {}
                            _ => panic!("{cell}: degraded marker diverged"),
                        }
                    }
                    // Typed failures are acceptable outcomes; they just
                    // have to be the *same* typed failure both times.
                    (Err(ExecError::Degraded { .. }), Err(ExecError::Degraded { .. }))
                    | (Err(ExecError::Unrecoverable(_)), Err(ExecError::Unrecoverable(_))) => {
                        assert_eq!(
                            format!("{:?}", a.as_ref().err()),
                            format!("{:?}", b.as_ref().err()),
                            "{cell}: error details diverged"
                        );
                    }
                    _ => panic!(
                        "{cell}: outcome not deterministic or not typed: {:?} vs {:?}",
                        a.as_ref().map(|_| "ok").map_err(|e| e.to_string()),
                        b.as_ref().map(|_| "ok").map_err(|e| e.to_string()),
                    ),
                }
            }
        }
    }
}

// `quiescent_faults_match_fault_free_bit_for_bit` migrated to the
// conformance corpus: tests/corpus/quiescent_matches_clean.case pins a
// quiescent-fault session bit-identical to the fault-free
// avg_uniform_clean_audit.case via its `answers_match` invariant.

/// Degraded error bars must never be narrower than fault-free ones
/// computed with the same query seed.
#[test]
fn degraded_cis_are_never_narrower() {
    let table = sample_table(5);
    let registry = UdfRegistry::default();
    let plan = plan_for("SELECT AVG(time) FROM sessions", &table);
    let clean =
        execute_approx(&plan, &table, POPULATION_ROWS, &registry, &opts_with(None, 13)).unwrap();
    let clean_hw = clean.scalar().unwrap().ci.unwrap().half_width;

    let mut cfg = FaultConfig::quiescent(9);
    cfg.truncation_prob = 0.7;
    cfg.truncation_keep = 0.5;
    let degraded =
        execute_approx(&plan, &table, POPULATION_ROWS, &registry, &opts_with(Some(cfg), 13))
            .unwrap();
    let info = degraded.degraded.expect("truncation must shrink the effective sample");
    assert!(info.effective_rows < info.planned_rows, "{info:?}");
    assert!(info.widen_factor > 1.0, "{info:?}");
    let hw = degraded.scalar().unwrap().ci.unwrap().half_width;
    assert!(hw >= clean_hw, "degraded hw {hw} narrower than fault-free {clean_hw}");
}

/// Losing partitions beyond the policy's tolerance must surface as the
/// typed `Degraded` error (the session layer turns this into an exact
/// fallback), and losing everything as `Unrecoverable`.
#[test]
fn typed_errors_for_intolerable_loss() {
    let table = sample_table(8);
    let registry = UdfRegistry::default();
    let plan = plan_for("SELECT AVG(time) FROM sessions", &table);

    // Certain death everywhere: nothing survives.
    let mut all_dead = FaultConfig::quiescent(1);
    all_dead.worker_death_prob = 1.0;
    all_dead.recovery.max_retries = 0;
    all_dead.recovery.max_lost_fraction = 1.0;
    match execute_approx(&plan, &table, POPULATION_ROWS, &registry, &opts_with(Some(all_dead), 2)) {
        Err(ExecError::Unrecoverable(_)) => {}
        other => panic!("expected Unrecoverable, got {other:?}"),
    }

    // Partial death with zero tolerance: some seed in a small window
    // must produce a partial (not total) loss and hence `Degraded`.
    let mut saw_degraded = false;
    for seed in 0..32 {
        let mut partial = FaultConfig::quiescent(seed);
        partial.worker_death_prob = 0.4;
        partial.recovery.max_retries = 0;
        partial.recovery.max_lost_fraction = 0.0;
        if let Err(ExecError::Degraded { lost_partitions, total_partitions }) = execute_approx(
            &plan,
            &table,
            POPULATION_ROWS,
            &registry,
            &opts_with(Some(partial), 2),
        ) {
            assert!(lost_partitions > 0 && lost_partitions < total_partitions);
            saw_degraded = true;
            break;
        }
    }
    assert!(saw_degraded, "no seed in 0..32 produced a partial loss");
}

/// Fixed-seed coverage harness: empirical CI coverage of the true
/// population mean under truncation faults must stay within two points
/// of the fault-free coverage (wider bars can only help).
#[test]
fn degraded_coverage_tracks_fault_free_coverage() {
    const TRIALS: u64 = 60;
    const SAMPLE_ROWS: usize = 4_000;
    let pop = conviva_sessions_table(40_000, 8, 77);
    let registry = UdfRegistry::default();
    let plan = plan_for("SELECT AVG(time) FROM sessions", &pop);
    let truth = execute_exact(&plan, &pop, &registry, 1).unwrap().scalar().unwrap();

    let mut clean_hits = 0u32;
    let mut degraded_hits = 0u32;
    for trial in 0..TRIALS {
        let mut rng = rng_from_seed(1_000 + trial);
        let idx = with_replacement_indices(&mut rng, SAMPLE_ROWS, pop.num_rows());
        let batch = pop.to_batch().unwrap().gather(&idx).unwrap();
        let sample = Table::from_batch("sessions_sample", batch, 8).unwrap();

        let clean = execute_approx(
            &plan,
            &sample,
            pop.num_rows(),
            &registry,
            &opts_with(None, trial),
        )
        .unwrap();
        if clean.scalar().unwrap().ci.unwrap().contains(truth) {
            clean_hits += 1;
        }

        let mut cfg = FaultConfig::quiescent(trial);
        cfg.truncation_prob = 0.6;
        cfg.truncation_keep = 0.5;
        let degraded = execute_approx(
            &plan,
            &sample,
            pop.num_rows(),
            &registry,
            &opts_with(Some(cfg), trial),
        )
        .unwrap();
        if degraded.scalar().unwrap().ci.unwrap().contains(truth) {
            degraded_hits += 1;
        }
    }
    let clean_cov = f64::from(clean_hits) / TRIALS as f64;
    let degraded_cov = f64::from(degraded_hits) / TRIALS as f64;
    assert!(
        degraded_cov >= clean_cov - 0.02,
        "degraded coverage {degraded_cov} fell more than 2 points below fault-free {clean_cov}"
    );
}

// `bootstrap_intervals_widen_too` migrated to the conformance corpus:
// tests/corpus/trimmed_mean_degraded.case forces a UDF aggregate through
// the bootstrap error-estimation path under heavy truncation and pins
// the degraded widen factor (and the widened CI bits) in its [expect].

/// Hook for the CI `fault-smoke` job: when `FAULT_MATRIX_SEED` is set,
/// run one mixed-fault query and dump its JSONL trace to
/// `target/fault-traces/seed_<seed>.jsonl` so the job can diff traces
/// across independent processes.
#[test]
fn dump_trace_for_ci_smoke() {
    let Some(seed) = std::env::var("FAULT_MATRIX_SEED").ok().and_then(|s| s.parse::<u64>().ok())
    else {
        return;
    };
    let table = sample_table(seed);
    let registry = UdfRegistry::default();
    let plan = plan_for("SELECT AVG(time) FROM sessions", &table);
    let mut cfg = FaultConfig::quiescent(seed);
    cfg.worker_death_prob = 0.15;
    cfg.transient_error_prob = 0.3;
    cfg.truncation_prob = 0.3;
    cfg.truncation_keep = 0.5;
    cfg.straggler_prob = 0.4;
    cfg.recovery.max_lost_fraction = 1.0; // always complete, however degraded
    let res =
        execute_approx(&plan, &table, POPULATION_ROWS, &registry, &opts_with(Some(cfg), seed))
            .expect("a fully loss-tolerant policy must complete");
    let dir = std::path::Path::new("target/fault-traces");
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join(format!("seed_{seed}.jsonl"));
    std::fs::write(&path, res.trace.to_jsonl()).unwrap();
    assert!(path.exists());
}

//! Tier-1 enforcement of the workspace invariants: `cargo run -p xtask
//! -- lint` must pass on the repository and must fail on code that
//! violates the rules (exercised against a synthetic fixture tree).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn run_lint(extra: &[&str]) -> Output {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    Command::new(cargo)
        .current_dir(repo_root())
        .args(["run", "-p", "xtask", "--offline", "--quiet", "--", "lint"])
        .args(extra)
        .output()
        .expect("spawning cargo run -p xtask")
}

#[test]
fn workspace_is_lint_clean() {
    let out = run_lint(&[]);
    assert!(
        out.status.success(),
        "lint failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("aqp-lint: OK"), "unexpected output: {stdout}");
    // Budgets must stay tight: a passing run with shrinkable budgets is a
    // stale allowlist.
    assert!(
        !stdout.contains("can shrink") && !stdout.contains("unused"),
        "allowlist has slack — tighten lint.toml:\n{stdout}"
    );
}

/// A fixture tree containing one violation of every rule family.
fn write_fixture(root: &Path) {
    let write = |rel: &str, content: &str| {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("fixture paths have parents"))
            .expect("mkdir fixture");
        std::fs::write(path, content).expect("write fixture");
    };
    // rng-discipline + nan-safety violations in an ordinary source file.
    write(
        "crates/workload/src/gen.rs",
        "pub fn f() -> u64 {\n    let mut r = rand::rng();\n    let mut v = vec![1.0f64];\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n    r.next_u64()\n}\n",
    );
    // panic-freedom violations in pipeline library code (and proof that a
    // #[cfg(test)] module is exempt).
    write(
        "crates/exec/src/engine.rs",
        "pub fn g(o: Option<u32>) -> u32 {\n    if o.is_none() { panic!(\"no\"); }\n    o.unwrap()\n}\n#[cfg(test)]\nmod tests {\n    fn ok() { None::<u32>.unwrap(); }\n}\n",
    );
    // timing-discipline: a raw Instant outside crates/obs (and proof
    // that the Clock implementation itself is exempt).
    write(
        "crates/bench/src/timer.rs",
        "pub fn h() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    );
    write(
        "crates/obs/src/clock.rs",
        "pub fn anchor() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    );
    // crate-hygiene: root missing the mandatory attributes...
    write("crates/exec/src/lib.rs", "//! Fixture crate.\npub mod engine;\n");
    // ...and a manifest dodging [workspace.dependencies].
    write(
        "crates/exec/Cargo.toml",
        "[package]\nname = \"fixture-exec\"\n\n[dependencies]\nrand = \"0.8\"\n",
    );
}

#[test]
fn fixture_violations_fail_the_lint() {
    let dir = std::env::temp_dir().join(format!("aqp-lint-fixture-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    write_fixture(&dir);

    let out = run_lint(&["--root", dir.to_str().expect("utf-8 temp path")]);
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    std::fs::remove_dir_all(&dir).expect("cleanup fixture");

    assert!(!out.status.success(), "lint accepted a fixture full of violations:\n{stdout}");
    for rule in [
        "rng-discipline",
        "nan-safety",
        "panic-freedom",
        "crate-hygiene",
        "timing-discipline",
    ] {
        assert!(stdout.contains(rule), "missing {rule} finding in:\n{stdout}");
    }
    // The exempt Clock implementation must NOT be reported.
    assert!(!stdout.contains("crates/obs/src/clock.rs"), "obs was linted:\n{stdout}");
    // Findings carry file:line coordinates.
    assert!(stdout.contains("crates/exec/src/engine.rs:2"), "no file:line in:\n{stdout}");
    // The #[cfg(test)] unwrap must NOT be reported (engine.rs line 7).
    assert!(!stdout.contains("engine.rs:7"), "test-module code was linted:\n{stdout}");
}

#[test]
fn fixture_allowlist_suppresses_budgeted_findings() {
    let dir = std::env::temp_dir().join(format!("aqp-lint-allow-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("src")).expect("mkdir fixture");
    std::fs::write(
        dir.join("src/gen.rs"),
        "pub fn f() { let _ = seeder.seed_from_u64(7); }\n",
    )
    .expect("write fixture");
    std::fs::write(
        dir.join("lint.toml"),
        "[[allow]]\nrule = \"rng-discipline\"\nfile = \"src/gen.rs\"\nmax = 1\nreason = \"fixture\"\n",
    )
    .expect("write allowlist");

    let config = dir.join("lint.toml");
    let out = run_lint(&[
        "--root",
        dir.to_str().expect("utf-8 temp path"),
        "--config",
        config.to_str().expect("utf-8 temp path"),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    std::fs::remove_dir_all(&dir).expect("cleanup fixture");

    assert!(out.status.success(), "allowlisted finding still failed:\n{stdout}");
    assert!(stdout.contains("1 finding(s) allowlisted"), "{stdout}");
}

//! Tier-1 enforcement of the workspace invariants: `cargo run -p xtask
//! -- analyze` must pass on the repository and must fail on code that
//! violates the rules, exercised end-to-end against the fixture corpus
//! in `crates/xtask/fixtures/`.
//!
//! Fixture format (`*.fix`): header prose, then `//@` directives with
//! embedded files. `//@ file: <rel>` starts a file whose content is the
//! following lines; `//@ expect: <rule>` / `//@ forbid: <rule>` assert
//! that a rule fires / stays silent on the materialized tree; the
//! `-text` variants assert on raw output substrings (for file:line
//! coordinates and exemption checks).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// The four whole-workspace semantic rules; the corpus must carry at
/// least two positive and two negative fixtures for each.
const SEMANTIC_RULES: [&str; 4] =
    ["lock-order", "determinism-taint", "widen-only-ci", "panic-reachability"];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn run_analyze(extra: &[&str]) -> Output {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    Command::new(cargo)
        .current_dir(repo_root())
        .args(["run", "-p", "xtask", "--offline", "--quiet", "--", "analyze"])
        .args(extra)
        .output()
        .expect("spawning cargo run -p xtask")
}

#[test]
fn workspace_is_analyze_clean() {
    let out = run_analyze(&[]);
    assert!(
        out.status.success(),
        "analyze failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("aqp-analyze: OK"), "unexpected output: {stdout}");
    // Budgets must stay tight: a passing run with shrinkable budgets is a
    // stale allowlist.
    assert!(
        !stdout.contains("can shrink") && !stdout.contains("unused"),
        "allowlist has slack — tighten lint.toml:\n{stdout}"
    );
}

// ---------------------------------------------------------------------
// Fixture corpus
// ---------------------------------------------------------------------

#[derive(Default)]
struct Fixture {
    name: String,
    expect_rules: Vec<String>,
    forbid_rules: Vec<String>,
    expect_text: Vec<String>,
    forbid_text: Vec<String>,
    files: Vec<(String, String)>,
}

fn parse_fixture(name: &str, src: &str) -> Fixture {
    let mut fx = Fixture { name: name.to_string(), ..Fixture::default() };
    for line in src.lines() {
        if let Some(rest) = line.strip_prefix("//@ ") {
            let (kind, value) = rest.split_once(':').unwrap_or_else(|| {
                panic!("{name}: malformed directive `{line}`");
            });
            let value = value.trim().to_string();
            match kind.trim() {
                "file" => fx.files.push((value, String::new())),
                "expect" => fx.expect_rules.push(value),
                "forbid" => fx.forbid_rules.push(value),
                "expect-text" => fx.expect_text.push(value),
                "forbid-text" => fx.forbid_text.push(value),
                other => panic!("{name}: unknown directive kind `{other}`"),
            }
        } else if let Some((_, content)) = fx.files.last_mut() {
            content.push_str(line);
            content.push('\n');
        }
        // Prose before the first `//@ file:` is fixture documentation.
    }
    let has_assertion = !fx.expect_rules.is_empty() || !fx.forbid_rules.is_empty();
    assert!(
        !fx.files.is_empty() && has_assertion,
        "{name}: a fixture needs at least one file and one expect/forbid"
    );
    fx
}

fn materialize(fx: &Fixture, dir: &Path) {
    for (rel, content) in &fx.files {
        let path = dir.join(rel);
        std::fs::create_dir_all(path.parent().expect("fixture paths have parents"))
            .expect("mkdir fixture");
        std::fs::write(path, content).expect("write fixture");
    }
}

fn load_corpus() -> Vec<Fixture> {
    let dir = repo_root().join("crates/xtask/fixtures");
    let mut names: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("crates/xtask/fixtures exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "fix"))
        .collect();
    names.sort();
    names
        .iter()
        .map(|p| {
            let name = p.file_stem().expect("stem").to_string_lossy().into_owned();
            let src = std::fs::read_to_string(p).expect("readable fixture");
            parse_fixture(&name, &src)
        })
        .collect()
}

#[test]
fn fixture_corpus_drives_every_rule() {
    let corpus = load_corpus();
    assert!(corpus.len() >= 16, "fixture corpus shrank to {} cases", corpus.len());

    for fx in &corpus {
        let dir = std::env::temp_dir()
            .join(format!("aqp-analyze-fix-{}-{}", std::process::id(), fx.name));
        let _ = std::fs::remove_dir_all(&dir);
        materialize(fx, &dir);

        let out = run_analyze(&["--root", dir.to_str().expect("utf-8 temp path")]);
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        std::fs::remove_dir_all(&dir).expect("cleanup fixture");

        if fx.expect_rules.is_empty() {
            assert!(
                out.status.success(),
                "{}: clean fixture was rejected:\n{stdout}",
                fx.name
            );
        } else {
            assert!(
                !out.status.success(),
                "{}: violating fixture was accepted:\n{stdout}",
                fx.name
            );
        }
        for rule in &fx.expect_rules {
            assert!(
                stdout.contains(&format!("[{rule}]")),
                "{}: missing [{rule}] finding in:\n{stdout}",
                fx.name
            );
        }
        for rule in &fx.forbid_rules {
            assert!(
                !stdout.contains(&format!("[{rule}]")),
                "{}: forbidden [{rule}] finding in:\n{stdout}",
                fx.name
            );
        }
        for text in &fx.expect_text {
            assert!(stdout.contains(text), "{}: missing `{text}` in:\n{stdout}", fx.name);
        }
        for text in &fx.forbid_text {
            assert!(!stdout.contains(text), "{}: forbidden `{text}` in:\n{stdout}", fx.name);
        }
    }

    // Structural floor: every semantic rule is demonstrated by at least
    // two positive and two negative fixtures.
    for rule in SEMANTIC_RULES {
        let pos = corpus.iter().filter(|f| f.expect_rules.iter().any(|r| r == rule)).count();
        let neg = corpus.iter().filter(|f| f.forbid_rules.iter().any(|r| r == rule)).count();
        assert!(pos >= 2, "only {pos} positive fixture(s) for {rule}");
        assert!(neg >= 2, "only {neg} negative fixture(s) for {rule}");
    }
}

// ---------------------------------------------------------------------
// Allowlist, report, and budget plumbing
// ---------------------------------------------------------------------

#[test]
fn fixture_allowlist_suppresses_budgeted_findings() {
    let dir = std::env::temp_dir().join(format!("aqp-analyze-allow-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("src")).expect("mkdir fixture");
    std::fs::write(
        dir.join("src/gen.rs"),
        "pub fn f() { let _ = seeder.seed_from_u64(7); }\n",
    )
    .expect("write fixture");
    std::fs::write(
        dir.join("lint.toml"),
        "[[allow]]\nrule = \"rng-discipline\"\nfile = \"src/gen.rs\"\nmax = 1\nreason = \"fixture\"\n",
    )
    .expect("write allowlist");

    let config = dir.join("lint.toml");
    let out = run_analyze(&[
        "--root",
        dir.to_str().expect("utf-8 temp path"),
        "--config",
        config.to_str().expect("utf-8 temp path"),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    std::fs::remove_dir_all(&dir).expect("cleanup fixture");

    assert!(out.status.success(), "allowlisted finding still failed:\n{stdout}");
    assert!(stdout.contains("1 finding(s) allowlisted"), "{stdout}");
}

#[test]
fn report_json_is_bit_stable_across_runs() {
    let dir = std::env::temp_dir().join(format!("aqp-analyze-report-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("crates/exec/src")).expect("mkdir fixture");
    std::fs::write(
        dir.join("crates/exec/src/lib.rs"),
        "#![deny(unsafe_code)]\n#![warn(missing_docs)]\n//! F.\n\n/// Panics.\npub fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n",
    )
    .expect("write fixture");

    let root = dir.to_str().expect("utf-8 temp path").to_owned();
    let mut reports = Vec::new();
    for run in ["r1.json", "r2.json"] {
        let report = dir.join(run);
        let out = run_analyze(&[
            "--root",
            &root,
            "--report",
            report.to_str().expect("utf-8 temp path"),
        ]);
        assert!(!out.status.success(), "violating fixture was accepted");
        reports.push(std::fs::read(&report).expect("report written"));
    }
    std::fs::remove_dir_all(&dir).expect("cleanup fixture");

    assert_eq!(reports[0], reports[1], "findings JSON differs across identical runs");
    let text = String::from_utf8(reports[0].clone()).expect("utf-8 report");
    for key in ["\"schema\"", "\"findings\"", "\"rules\"", "panic-freedom"] {
        assert!(text.contains(key), "report missing {key}:\n{text}");
    }
}

#[test]
fn budget_check_passes_against_committed_baseline() {
    let out = run_analyze(&["--check-budget"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success() && stdout.contains("budget OK"),
        "check-budget failed on the committed lint.toml:\n{stdout}{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

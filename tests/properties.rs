//! Property-based tests (proptest) on the core statistical and query
//! invariants.

use proptest::prelude::*;

use reliable_aqp::sql::parse_query;
use reliable_aqp::stats::ci::{ci_from_draws, symmetric_half_width};
use reliable_aqp::stats::estimator::{Aggregate, QueryEstimator, SampleContext, Udf};
use reliable_aqp::stats::moments::{Moments, WeightedMoments};
use reliable_aqp::stats::quantile::{quantile, weighted_quantile};
use reliable_aqp::stats::resample::{poisson_weights, resample_size};
use reliable_aqp::stats::rng::rng_from_seed;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6..1.0e6f64, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The symmetric interval covers at least α of the draws, and its
    /// half-width is the smallest such value (shrinking it by ε loses
    /// coverage).
    #[test]
    fn symmetric_interval_is_minimal_cover(
        draws in finite_vec(200),
        center in -100.0..100.0f64,
        alpha in 0.05..0.999f64,
    ) {
        let hw = symmetric_half_width(center, &draws, alpha);
        let covered = draws.iter().filter(|&&d| (d - center).abs() <= hw).count();
        prop_assert!(covered as f64 >= alpha * draws.len() as f64 - 1e-9);
        if hw > 0.0 {
            let shrunk = hw * (1.0 - 1e-9) - 1e-12;
            let covered_shrunk =
                draws.iter().filter(|&&d| (d - center).abs() <= shrunk).count();
            prop_assert!((covered_shrunk as f64) < alpha.mul_add(draws.len() as f64, 1.0));
        }
    }

    /// Interval half-width is monotone in α.
    #[test]
    fn interval_monotone_in_alpha(draws in finite_vec(100), center in -10.0..10.0f64) {
        let lo = ci_from_draws(center, &draws, 0.5).half_width;
        let mid = ci_from_draws(center, &draws, 0.9).half_width;
        let hi = ci_from_draws(center, &draws, 0.99).half_width;
        prop_assert!(lo <= mid && mid <= hi);
    }

    /// Weighted evaluation of every aggregate equals evaluation on the
    /// physically expanded multiset.
    #[test]
    fn weighted_aggregates_equal_expansion(
        pairs in prop::collection::vec((-1.0e4..1.0e4f64, 0u32..4), 1..60),
    ) {
        let values: Vec<f64> = pairs.iter().map(|(v, _)| *v).collect();
        let weights: Vec<u32> = pairs.iter().map(|(_, w)| *w).collect();
        let expanded = Udf::expand(&values, &weights);
        let ctx = SampleContext::new(values.len(), values.len() * 10);
        // SUM/COUNT are excluded: their Poissonized evaluation uses the
        // size-centered statistic (see aqp_stats::estimator), which is
        // deliberately NOT the naive expansion.
        for agg in [
            Aggregate::Avg,
            Aggregate::Variance,
            Aggregate::Min,
            Aggregate::Max,
        ] {
            let w = agg.estimate_weighted(&values, &weights, &ctx);
            let e = agg.estimate(&expanded, &ctx);
            // `w == e` covers the equal-infinities case (MIN/MAX of an
            // empty resample).
            prop_assert!(
                w == e
                    || (w - e).abs() <= 1e-6 * e.abs().max(1.0)
                    || (w.is_nan() && e.is_nan()),
                "{agg}: weighted {w} vs expanded {e}"
            );
        }
    }

    /// Size-centered SUM is unbiased over resamples and exact at unit
    /// weights.
    #[test]
    fn centered_sum_unbiased(xs in finite_vec(60), pop_mult in 2usize..20) {
        let n = xs.len();
        let ctx = SampleContext::new(n, n * pop_mult);
        let unit = vec![1u32; n];
        let at_unit = Aggregate::Sum.estimate_weighted(&xs, &unit, &ctx);
        let point = Aggregate::Sum.estimate(&xs, &ctx);
        prop_assert!((at_unit - point).abs() <= 1e-9 * point.abs().max(1.0));
        // Monte-Carlo mean over resamples tracks the point estimate.
        let mut rng = rng_from_seed(7);
        let mut acc = 0.0;
        let reps = 200;
        for _ in 0..reps {
            let w = poisson_weights(&mut rng, n);
            acc += Aggregate::Sum.estimate_weighted(&xs, &w, &ctx);
        }
        let mc_mean = acc / reps as f64;
        let spread = xs.iter().map(|x| x.abs()).sum::<f64>().max(1.0) * ctx.scale();
        prop_assert!((mc_mean - point).abs() <= 0.35 * spread,
            "mc {mc_mean} vs point {point}");
    }

    /// Weighted quantiles equal quantiles of the expansion (nearest-rank).
    #[test]
    fn weighted_quantile_equals_expansion(
        pairs in prop::collection::vec((-1.0e3..1.0e3f64, 0u32..4), 1..50),
        q in 0.0..1.0f64,
    ) {
        let values: Vec<f64> = pairs.iter().map(|(v, _)| *v).collect();
        let weights: Vec<u32> = pairs.iter().map(|(_, w)| *w).collect();
        let expanded = Udf::expand(&values, &weights);
        let wq = weighted_quantile(&values, &weights, q);
        if expanded.is_empty() {
            prop_assert!(wq.is_none());
        } else {
            // Nearest-rank on the expansion.
            let mut sorted = expanded.clone();
            sorted.sort_by(f64::total_cmp);
            let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            prop_assert_eq!(wq.unwrap(), sorted[target - 1]);
        }
    }

    /// Moments merge is order-insensitive and matches single-pass.
    #[test]
    fn moments_merge_associative(xs in finite_vec(120), split in 0usize..120) {
        let split = split.min(xs.len());
        let full = Moments::from_slice(&xs);
        let mut left = Moments::from_slice(&xs[..split]);
        left.merge(&Moments::from_slice(&xs[split..]));
        prop_assert_eq!(full.count(), left.count());
        prop_assert!((full.mean() - left.mean()).abs() <= 1e-6 * full.mean().abs().max(1.0));
        let (v1, v2) = (full.variance_population(), left.variance_population());
        if full.count() > 0 {
            prop_assert!((v1 - v2).abs() <= 1e-5 * v1.abs().max(1.0), "{v1} vs {v2}");
        }
    }

    /// Weighted moments with unit weights equal plain moments.
    #[test]
    fn unit_weights_are_identity(xs in finite_vec(80)) {
        let mut w = WeightedMoments::new();
        for &x in &xs {
            w.push(x, 1);
        }
        let m = Moments::from_slice(&xs);
        prop_assert_eq!(w.weight(), m.count());
        prop_assert!((w.mean() - m.mean()).abs() <= 1e-9 * m.mean().abs().max(1.0));
    }

    /// Poissonized resample sizes concentrate around n.
    #[test]
    fn poissonized_size_concentration(seed in 0u64..1000, n in 1_000usize..20_000) {
        let mut rng = rng_from_seed(seed);
        let w = poisson_weights(&mut rng, n);
        let size = resample_size(&w) as f64;
        // 6σ band: |size − n| < 6√n.
        prop_assert!((size - n as f64).abs() < 6.0 * (n as f64).sqrt(),
            "size {size} vs n {n}");
    }

    /// SUM and COUNT estimates scale linearly with the population size.
    #[test]
    fn sum_count_scaling_linearity(xs in finite_vec(60), factor in 2usize..10) {
        let n = xs.len();
        let ctx1 = SampleContext::new(n, n * 10);
        let ctx2 = SampleContext::new(n, n * 10 * factor);
        let s1 = Aggregate::Sum.estimate(&xs, &ctx1);
        let s2 = Aggregate::Sum.estimate(&xs, &ctx2);
        prop_assert!((s2 - s1 * factor as f64).abs() <= 1e-6 * s1.abs().max(1.0));
        let c1 = Aggregate::Count.estimate(&xs, &ctx1);
        let c2 = Aggregate::Count.estimate(&xs, &ctx2);
        prop_assert!((c2 - c1 * factor as f64).abs() <= 1e-9 * c1.abs().max(1.0));
    }

    /// Parser round-trip: Display output re-parses to the same AST.
    #[test]
    fn parser_display_round_trip(
        agg_idx in 0usize..5,
        col_idx in 0usize..3,
        threshold in -100i64..100,
        with_filter in any::<bool>(),
        with_group in any::<bool>(),
        err_pct in prop::option::of(1u32..50),
    ) {
        let aggs = ["AVG", "SUM", "COUNT", "MIN", "MAX"];
        let cols = ["time", "bytes", "bitrate"];
        let mut sql = format!("SELECT {}({})", aggs[agg_idx], cols[col_idx]);
        if with_group {
            sql = format!("SELECT city, {}({})", aggs[agg_idx], cols[col_idx]);
        }
        sql.push_str(" FROM sessions");
        if with_filter {
            sql.push_str(&format!(" WHERE {} > {}", cols[(col_idx + 1) % 3], threshold));
        }
        if with_group {
            sql.push_str(" GROUP BY city");
        }
        if let Some(p) = err_pct {
            sql.push_str(&format!(" WITHIN {p}% ERROR AT CONFIDENCE 95%"));
        }
        let q1 = parse_query(&sql).unwrap();
        let q2 = parse_query(&q1.to_string()).unwrap();
        prop_assert_eq!(q1, q2);
    }

    /// The lexer and parser never panic, whatever the input.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse_query(&input); // Ok or Err, never a panic
    }

    /// Pushdown is idempotent in effect: re-running the rewrite on an
    /// already-rewritten plan inserts at the same place (one extra node
    /// per application, same relative position).
    #[test]
    fn pushdown_inserts_directly_below_the_aggregate(threshold in 0i64..100) {
        use reliable_aqp::sql::logical::{LogicalPlan, ResampleSpec};
        use reliable_aqp::sql::rewriter::insert_pushed_down;
        use reliable_aqp::storage::{DataType, Field, Schema};
        let schema = Schema::new(vec![
            Field::new("city", DataType::Str),
            Field::new("time", DataType::Float),
        ]).unwrap();
        let sql = format!("SELECT SUM(time) FROM s WHERE time > {threshold}");
        let q = parse_query(&sql).unwrap();
        let plan = reliable_aqp::sql::plan_query(&q, &schema).unwrap();
        let rewritten = insert_pushed_down(plan, &ResampleSpec::bootstrap(5, 2));
        // The resample node must be the aggregate's direct input.
        match &rewritten {
            LogicalPlan::Aggregate { input, .. } => {
                let is_resample = matches!(**input, LogicalPlan::Resample { .. });
                prop_assert!(is_resample);
            }
            other => prop_assert!(false, "unexpected root {other:?}"),
        }
    }

    /// Plan rewriting preserves pass-through chain contents in EXPLAIN.
    #[test]
    fn rewriter_preserves_operators(threshold in 0i64..200) {
        use reliable_aqp::sql::logical::ResampleSpec;
        use reliable_aqp::sql::rewriter::insert_pushed_down;
        use reliable_aqp::sql::{plan_query};
        use reliable_aqp::storage::{DataType, Field, Schema};
        let schema = Schema::new(vec![
            Field::new("city", DataType::Str),
            Field::new("time", DataType::Float),
        ]).unwrap();
        let sql = format!("SELECT AVG(time) FROM s WHERE time > {threshold}");
        let q = parse_query(&sql).unwrap();
        let plan = plan_query(&q, &schema).unwrap();
        let before = plan.explain();
        let after = insert_pushed_down(plan, &ResampleSpec::bootstrap(10, 1)).explain();
        // Every original operator line still appears, exactly once more
        // line (the Resample) exists.
        for line in before.lines() {
            prop_assert!(after.contains(line.trim()), "missing {line}");
        }
        prop_assert_eq!(after.lines().count(), before.lines().count() + 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Simulated naive latency dominates optimized latency for any
    /// profile in the supported ranges.
    #[test]
    fn simulator_naive_dominates_optimized(
        sample_gb in 4.0..20.0f64,
        selectivity in 0.005..0.3f64,
        agg_cpu in 0.5..3.0f64,
        closed_form in any::<bool>(),
        seed in 0u64..100,
    ) {
        use reliable_aqp::cluster::{simulate_query, ClusterConfig, PhysicalTuning, PlanMode, QueryProfile};
        let profile = QueryProfile {
            sample_mb: sample_gb * 1000.0,
            selectivity,
            scan_cpu_ms_per_mb: 0.5,
            agg_cpu_ms_per_mb: agg_cpu,
            closed_form,
            bootstrap_k: 100,
            diag_p: 100,
            diag_subsample_mb: vec![50.0, 100.0, 200.0],
        };
        let cfg = ClusterConfig::default();
        let tuning = PhysicalTuning::untuned(&cfg);
        let naive = simulate_query(&profile, PlanMode::Naive, &tuning, &cfg, seed);
        let opt = simulate_query(&profile, PlanMode::Optimized, &tuning, &cfg, seed);
        // Diagnostics always win big; error estimation wins for
        // bootstrap-only queries and roughly ties for closed forms.
        prop_assert!(opt.diag_s <= naive.diag_s);
        if !closed_form {
            prop_assert!(opt.error_s < naive.error_s);
        } else {
            // Closed-form error estimation is cheap either way; the
            // consolidated pass carries a fixed ~0.1 s reduce that can
            // exceed a trivial naive subquery (Fig. 8(a)'s ~1x band).
            prop_assert!(opt.error_s <= naive.error_s * 2.0 + 0.1);
        }
        prop_assert!(naive.total() >= opt.total() * 0.9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Histogram quantiles are monotone (p50 ≤ p95 ≤ p99) and each one
    /// lands inside the bucket that contains the corresponding
    /// nearest-rank order statistic of the recorded observations
    /// (clamping to the last finite boundary for overflow data).
    #[test]
    fn histogram_quantiles_monotone_and_bucket_bounded(
        obs in prop::collection::vec(0.0..2_000.0f64, 1..300),
    ) {
        use reliable_aqp::obs::MetricsRegistry;
        let boundaries = [1.0, 5.0, 25.0, 100.0, 500.0, 1_000.0];
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with("aqp.test.lat_ms", &boundaries);
        for &ms in &obs {
            h.record_ms(ms);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, obs.len() as u64);
        prop_assert!(
            s.p50 <= s.p95 && s.p95 <= s.p99,
            "quantiles not monotone: p50={} p95={} p99={}", s.p50, s.p95, s.p99
        );

        let mut sorted = obs.clone();
        sorted.sort_by(f64::total_cmp);
        let last_finite = *boundaries.last().unwrap();
        for (q, got) in [(0.50, s.p50), (0.95, s.p95), (0.99, s.p99)] {
            // The nearest-rank order statistic the estimate targets.
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let x = sorted[rank - 1];
            // Its containing bucket, under the recorder's rule that a
            // value exactly on a boundary belongs to that bucket.
            let idx = boundaries.partition_point(|&b| b < x);
            let lo = if idx == 0 { 0.0 } else { boundaries[idx - 1] };
            match boundaries.get(idx) {
                // Finite bucket: the interpolated estimate stays inside.
                Some(&hi) => prop_assert!(
                    got >= lo && got <= hi,
                    "q={q}: estimate {got} outside bucket ({lo}, {hi}] of rank-{rank} obs {x}"
                ),
                // Overflow bucket: clamps to the last finite boundary.
                None => prop_assert!(
                    (got - last_finite).abs() < 1e-12,
                    "q={q}: overflow estimate {got} != clamp {last_finite}"
                ),
            }
        }
    }
}

/// Shared fixture for the fault-injection properties: a fixed sample
/// table, a fixed AVG plan, and the fault-free half-width under the
/// same query seed every faulted run uses.
mod fault_fixture {
    use reliable_aqp::exec::{execute_approx, ApproxOptions, UdfRegistry};
    use reliable_aqp::faults::FaultConfig;
    use reliable_aqp::obs::{Clock, ObsHandle};
    use reliable_aqp::sql::{parse_query, plan_query, LogicalPlan};
    use reliable_aqp::storage::Table;
    use reliable_aqp::workload::conviva_sessions_table;
    use std::sync::OnceLock;

    pub const POPULATION_ROWS: usize = 200_000;
    pub const QUERY_SEED: u64 = 7;

    pub fn opts(faults: Option<FaultConfig>) -> ApproxOptions {
        ApproxOptions {
            seed: QUERY_SEED,
            threads: 1,
            obs: ObsHandle::isolated(Clock::mock()),
            faults,
            ..Default::default()
        }
    }

    pub fn fixture() -> &'static (Table, LogicalPlan, UdfRegistry, f64) {
        static F: OnceLock<(Table, LogicalPlan, UdfRegistry, f64)> = OnceLock::new();
        F.get_or_init(|| {
            let table = conviva_sessions_table(2_000, 8, 31);
            let plan = plan_query(
                &parse_query("SELECT AVG(time) FROM sessions").unwrap(),
                table.schema(),
            )
            .unwrap();
            let registry = UdfRegistry::default();
            let clean =
                execute_approx(&plan, &table, POPULATION_ROWS, &registry, &opts(None)).unwrap();
            let clean_hw = clean.scalar().unwrap().ci.unwrap().half_width;
            (table, plan, registry, clean_hw)
        })
    }
}

/// A loss-tolerant random fault configuration (queries always complete
/// or die `Unrecoverable`, never `Degraded`-rejected).
#[allow(clippy::too_many_arguments)]
fn fault_config_from(
    (seed, death, transient, corrupt): (u64, f64, f64, f64),
    (trunc, keep, strag): (f64, f64, f64),
    (retries, spec): (usize, bool),
) -> reliable_aqp::faults::FaultConfig {
    let mut c = reliable_aqp::faults::FaultConfig::quiescent(seed);
    c.worker_death_prob = death;
    c.transient_error_prob = transient;
    c.corruption_prob = corrupt;
    c.truncation_prob = trunc;
    c.truncation_keep = keep;
    c.straggler_prob = strag;
    c.recovery.max_retries = retries;
    c.recovery.speculative = spec;
    c.recovery.max_lost_fraction = 1.0;
    c
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// For any fault plan: the effective sample never grows, the widen
    /// factor never narrows, and degraded half-widths are at least the
    /// fault-free half-width under the same query seed.
    #[test]
    fn degraded_bars_never_narrower_and_rows_never_grow(
        probs in (0u64..1_000, 0.0..0.5f64, 0.0..0.5f64, 0.0..0.5f64),
        trunc in (0.0..0.8f64, 0.1..1.0f64, 0.0..0.8f64),
        policy in (0usize..3, any::<bool>()),
    ) {
        use reliable_aqp::exec::{execute_approx, ExecError};
        let cfg = fault_config_from(probs, trunc, policy);
        let (table, plan, registry, clean_hw) = fault_fixture::fixture();
        match execute_approx(
            plan,
            table,
            fault_fixture::POPULATION_ROWS,
            registry,
            &fault_fixture::opts(Some(cfg)),
        ) {
            Ok(r) => {
                if let Some(d) = r.degraded {
                    prop_assert!(d.effective_rows <= d.planned_rows,
                        "effective {} > planned {}", d.effective_rows, d.planned_rows);
                    prop_assert!(d.effective_rows > 0);
                    prop_assert!(d.widen_factor >= 1.0, "widen {}", d.widen_factor);
                }
                let ci = r.scalar().unwrap().ci.unwrap();
                prop_assert!(ci.half_width.is_finite());
                prop_assert!(
                    ci.half_width >= clean_hw - 1e-12,
                    "degraded hw {} narrower than fault-free {clean_hw}", ci.half_width
                );
            }
            // Every partition lost: the one acceptable typed failure
            // under a fully loss-tolerant policy.
            Err(ExecError::Unrecoverable(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    /// The pure per-task recovery resolution is deterministic and
    /// respects the policy's attempt budget.
    #[test]
    fn resolve_is_deterministic_and_bounded(
        probs in (0u64..1_000, 0.0..0.5f64, 0.0..0.5f64, 0.0..0.5f64),
        trunc in (0.0..0.8f64, 0.1..1.0f64, 0.0..0.8f64),
        policy in (0usize..3, any::<bool>()),
        task in 0usize..64,
    ) {
        use reliable_aqp::faults::{resolve, FaultPlan};
        let cfg = fault_config_from(probs, trunc, policy);
        let plan = FaultPlan::new(cfg.clone());
        let a = resolve(&plan, &cfg.recovery, task);
        let b = resolve(&plan, &cfg.recovery, task);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"), "resolve not deterministic");
        prop_assert!(a.attempts >= 1);
        prop_assert!(a.attempts <= cfg.recovery.max_retries + 1,
            "attempts {} exceed budget {}", a.attempts, cfg.recovery.max_retries + 1);
        if let Some(keep) = a.truncate_keep {
            prop_assert!((0.0..=1.0).contains(&keep));
        }
        prop_assert!(!a.lost || a.faulted(), "lost task with no fault events");
    }
}

#[test]
fn empty_histogram_quantiles_are_zero() {
    let reg = reliable_aqp::obs::MetricsRegistry::new();
    let s = reg.histogram_with("aqp.test.empty_ms", &[1.0, 10.0]).snapshot();
    assert_eq!(s.count, 0);
    assert_eq!((s.p50, s.p95, s.p99), (0.0, 0.0, 0.0));
    assert_eq!(s.mean_ms(), 0.0);
}

#[test]
fn single_sample_histogram_quantiles_share_its_bucket() {
    let reg = reliable_aqp::obs::MetricsRegistry::new();
    let h = reg.histogram_with("aqp.test.single_ms", &[1.0, 10.0, 100.0]);
    h.record_ms(7.5); // lives in the (1, 10] bucket
    let s = h.snapshot();
    assert_eq!(s.count, 1);
    for q in [s.p50, s.p95, s.p99] {
        assert!(q > 1.0 && q <= 10.0, "single-sample quantile {q} escaped its bucket");
    }
    assert_eq!(s.p50, s.p99); // one observation -> one answer everywhere
}

#[test]
fn poisson1_moments_are_correct() {
    // Deterministic (non-proptest) statistical check with a large n.
    let mut rng = rng_from_seed(42);
    let w = poisson_weights(&mut rng, 500_000);
    let mean = resample_size(&w) as f64 / w.len() as f64;
    assert!((mean - 1.0).abs() < 0.01);
    let var = w.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / w.len() as f64;
    assert!((var - 1.0).abs() < 0.02);
}

#[test]
fn quantile_bounds_are_order_statistics() {
    let xs: Vec<f64> = (0..1000).map(|i| (i as f64) * 0.5).collect();
    assert_eq!(quantile(&xs, 0.0), Some(0.0));
    assert_eq!(quantile(&xs, 1.0), Some(499.5));
}

// Explicit replays of the shrunk inputs recorded in
// `tests/properties.proptest-regressions`. The vendored proptest derives
// its seeds from the test name and does NOT read that file, so each
// persisted entry is backed by a plain #[test] here that re-runs the
// exact shrunk input against the current code. If one of these starts
// failing, the historical bug has returned; if a persisted entry loses
// its replay test, prune it from the regressions file.

/// Replay of `cc 821f12…` (`weighted_aggregates_equal_expansion`,
/// shrinks to `pairs = [(0.0, 0)]`): a single value with weight zero
/// expands to the empty multiset, so MIN/MAX see an empty resample and
/// both paths must agree on the ±infinity sentinels instead of
/// disagreeing (the original failure: weighted path returned the raw
/// value, expansion returned the empty-set identity).
#[test]
fn regression_weighted_aggregates_empty_expansion() {
    let values = [0.0f64];
    let weights = [0u32];
    let expanded = Udf::expand(&values, &weights);
    assert!(expanded.is_empty(), "weight 0 must expand to nothing");
    let ctx = SampleContext::new(values.len(), values.len() * 10);
    for agg in [Aggregate::Avg, Aggregate::Variance, Aggregate::Min, Aggregate::Max] {
        let w = agg.estimate_weighted(&values, &weights, &ctx);
        let e = agg.estimate(&expanded, &ctx);
        assert!(
            w == e || (w - e).abs() <= 1e-6 * e.abs().max(1.0) || (w.is_nan() && e.is_nan()),
            "{agg}: weighted {w} vs expanded {e} on the empty expansion"
        );
    }
}

/// Replay of `cc 9af2e6…` (`simulator_naive_dominates_optimized`,
/// shrinks to `sample_gb = 4.0, selectivity = 0.005, agg_cpu = 0.5,
/// closed_form = true, seed = 0`): the smallest closed-form query,
/// where the consolidated error-estimation pass's fixed reduce cost can
/// exceed the trivial naive subquery. The optimized plan must still win
/// on diagnostics and stay inside the Fig. 8(a) ~1x band on error
/// estimation.
#[test]
fn regression_simulator_tiny_closed_form_query() {
    use reliable_aqp::cluster::{
        simulate_query, ClusterConfig, PhysicalTuning, PlanMode, QueryProfile,
    };
    let profile = QueryProfile {
        sample_mb: 4.0 * 1000.0,
        selectivity: 0.005,
        scan_cpu_ms_per_mb: 0.5,
        agg_cpu_ms_per_mb: 0.5,
        closed_form: true,
        bootstrap_k: 100,
        diag_p: 100,
        diag_subsample_mb: vec![50.0, 100.0, 200.0],
    };
    let cfg = ClusterConfig::default();
    let tuning = PhysicalTuning::untuned(&cfg);
    let naive = simulate_query(&profile, PlanMode::Naive, &tuning, &cfg, 0);
    let opt = simulate_query(&profile, PlanMode::Optimized, &tuning, &cfg, 0);
    assert!(opt.diag_s <= naive.diag_s);
    assert!(opt.error_s <= naive.error_s * 2.0 + 0.1);
    assert!(naive.total() >= opt.total() * 0.9);
}

//! End-to-end acceptance for the fleet-level SLO engine and the
//! always-on flight recorder: zero footprint when disabled, bit-stable
//! alert sequences and dump artifacts under the mock clock, drift
//! signals that beat the audit window to the punch, and a <5%
//! wall-clock overhead bound when everything is switched on.
//!
//! The CI `slo-smoke` job re-runs [`dump_artifact_for_ci_smoke`] under
//! `SLO_SMOKE_SEED` and byte-diffs the recorder dumps across processes.

use reliable_aqp::audit::AuditConfig;
use reliable_aqp::faults::FaultConfig;
use reliable_aqp::obs::{name, Clock, FlightRecorderConfig, ObsHandle};
use reliable_aqp::slo::SloConfig;
use reliable_aqp::workload::{conviva_sessions_table, facebook_events_table};
use reliable_aqp::{AqpSession, SessionConfig};

/// A coverage-floor SLO at the paper's claimed 95% confidence, with a
/// small in-memory flight recorder.
fn coverage_slo() -> SloConfig {
    SloConfig::new()
        .with_coverage(SloConfig::DEFAULT_CLASS, 0.95)
        .with_recorder(FlightRecorderConfig { capacity: 8, path: None })
}

/// The miscalibrated replay: unchecked bootstrap `MAX(payload_kb)` over
/// a Pareto tail, every query audited. Coverage collapses, the burn
/// rate crosses both thresholds, and each latched alert dumps the
/// flight recorder.
fn miscalibrated_session(obs: ObsHandle, slo: SloConfig) -> AqpSession {
    let s = AqpSession::new(SessionConfig {
        seed: 2,
        threads: 1,
        bootstrap_k: 40,
        run_diagnostics: false,
        obs,
        audit: Some(AuditConfig { sample_rate: 1.0, seed: 3, ..Default::default() }),
        slo: Some(slo),
        ..Default::default()
    });
    s.register_table(facebook_events_table(40_000, 8, 2)).unwrap();
    s.build_samples("events", &[8_000], 7).unwrap();
    s
}

#[test]
fn slo_is_off_by_default_with_zero_footprint() {
    let obs = ObsHandle::isolated(Clock::mock());
    let s = AqpSession::new(SessionConfig {
        seed: 5,
        threads: 1,
        obs: obs.clone(),
        ..Default::default()
    });
    s.register_table(conviva_sessions_table(20_000, 4, 5)).unwrap();
    s.build_samples("sessions", &[4_000], 9).unwrap();
    for _ in 0..5 {
        s.execute("SELECT AVG(time) FROM sessions").unwrap();
    }
    assert!(s.slo_report().is_none(), "no SLO engine was configured");
    assert!(s.flight_recorder().is_none(), "no recorder was configured");
    // Not a single SLO or recorder metric may even be registered.
    let snap = obs.metrics.snapshot();
    let leaked = |k: &str| k.starts_with("aqp.slo.") || k.starts_with("aqp.obs.recorder");
    assert!(
        snap.counters.iter().all(|(k, _)| !leaked(k))
            && snap.gauges.iter().all(|(k, _)| !leaked(k))
            && snap.histograms.iter().all(|(k, _)| !leaked(k)),
        "SLO metrics leaked into a session with slo: None"
    );
}

#[test]
fn enabling_slo_leaves_answers_and_traces_bit_identical() {
    // The engine observes the pipeline; it must never perturb it. Same
    // seed, same mock clock, same queries — answers and traces have to
    // be byte-for-byte identical with the SLO layer on and off.
    let run = |slo: Option<SloConfig>| {
        let obs = ObsHandle::isolated(Clock::mock());
        let s = AqpSession::new(SessionConfig {
            seed: 7,
            threads: 1,
            obs: obs.clone(),
            audit: Some(AuditConfig { sample_rate: 0.5, seed: 3, ..Default::default() }),
            slo,
            ..Default::default()
        });
        s.register_table(conviva_sessions_table(20_000, 4, 5)).unwrap();
        s.build_samples("sessions", &[4_000], 9).unwrap();
        let mut answers = String::new();
        let mut traces = String::new();
        for i in 0..12 {
            let sql = match i % 3 {
                0 => "SELECT AVG(time) FROM sessions",
                1 => "SELECT SUM(bytes) FROM sessions",
                _ => "SELECT COUNT(*) FROM sessions WHERE is_mobile = true",
            };
            let a = s.execute(sql).unwrap();
            let scalar = a.scalar().unwrap();
            answers.push_str(&format!("{} {:x}\n", scalar.name, scalar.estimate.to_bits()));
            traces.push_str(&a.trace.to_jsonl());
        }
        // The shared (non-SLO) metric families must agree too.
        let metrics: String = obs
            .metrics
            .snapshot()
            .to_jsonl()
            .lines()
            .filter(|l| !l.contains("aqp.slo.") && !l.contains("aqp.obs.recorder"))
            .map(|l| format!("{l}\n"))
            .collect();
        (answers, traces, metrics)
    };
    let off = run(None);
    let on = run(Some(
        coverage_slo().with_latency(SloConfig::DEFAULT_CLASS, 0.95, 40.0),
    ));
    assert_eq!(off.0, on.0, "answers changed when the SLO engine was enabled");
    // Under `count-alloc`, stage spans carry live allocator counts that
    // are not reproducible across runs (the feature is excluded from
    // bit-stable artifacts by contract); default builds — what CI runs —
    // keep the byte-for-byte guarantee.
    if !reliable_aqp::obs::alloc::enabled() {
        assert_eq!(off.1, on.1, "traces changed when the SLO engine was enabled");
        assert_eq!(off.2, on.2, "shared metrics changed when the SLO engine was enabled");
    }
}

#[test]
fn alert_sequence_and_dump_bytes_are_deterministic() {
    let run = || {
        let obs = ObsHandle::isolated(Clock::mock());
        let s = miscalibrated_session(obs.clone(), coverage_slo());
        for _ in 0..40 {
            s.execute("SELECT MAX(payload_kb) FROM events").unwrap();
        }
        let report = s.slo_report().unwrap();
        let alerts: String = report.alerts.iter().map(|a| format!("{a}\n")).collect();
        let dump = s.flight_recorder().unwrap().last_dump().expect("an alert dumped");
        let snap = obs.metrics.snapshot();
        (
            alerts,
            dump,
            snap.counter(name::SLO_PAGE_ALERTS),
            snap.counter(name::OBS_RECORDER_DUMPS),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "alert sequence must be a pure function of the seed");
    assert_eq!(a.1, b.1, "dump artifacts must be byte-identical across runs");
    assert!(a.2.unwrap_or(0) >= 1, "collapsed coverage must page: {}", a.0);
    assert!(a.3.unwrap_or(0) >= 1, "every latched alert freezes a dump");
    assert!(a.1.starts_with("{\"recorder\":\"aqp-flight-recorder/v1\""), "{}", a.1);
}

#[test]
fn drift_fires_before_the_audit_window_alert() {
    // 30 healthy AVG queries build the fleet baseline; then the
    // workload pivots to the miscalibrated MAX tail. The audit window
    // needs `min_window_for_alert` scored results before it may latch;
    // the drift detectors flag the same stream within a handful of
    // queries — that gap is the whole point of running them online.
    let obs = ObsHandle::isolated(Clock::mock());
    let s = miscalibrated_session(obs.clone(), coverage_slo());
    for _ in 0..30 {
        s.execute("SELECT AVG(payload_kb) FROM events").unwrap();
    }
    assert!(
        s.audit_report().unwrap().alerts.is_empty(),
        "the healthy phase must not trip the audit window"
    );
    assert_eq!(
        obs.metrics.snapshot().counter(name::SLO_DRIFT_SIGNALS).unwrap_or(0),
        0,
        "the healthy phase must not trip the drift detectors"
    );
    let mut drift_at = None;
    let mut audit_alert_at = None;
    for i in 0..30 {
        s.execute("SELECT MAX(payload_kb) FROM events").unwrap();
        let drifted =
            obs.metrics.snapshot().counter(name::SLO_DRIFT_SIGNALS).unwrap_or(0) > 0;
        if drift_at.is_none() && drifted {
            drift_at = Some(i);
        }
        if audit_alert_at.is_none() && !s.audit_report().unwrap().alerts.is_empty() {
            audit_alert_at = Some(i);
        }
    }
    let drift_at = drift_at.expect("the miscalibrated phase must raise a drift signal");
    let audit_alert_at =
        audit_alert_at.expect("sustained misses must eventually trip the audit window");
    assert!(
        drift_at < audit_alert_at,
        "drift (query {drift_at}) must fire before the audit window latches \
         (query {audit_alert_at})"
    );
    assert!(drift_at <= 8, "drift should flag the pivot within a few queries ({drift_at})");
    let report = s.slo_report().unwrap();
    assert!(
        report.drift.iter().any(|d| d.stream.starts_with("fleet/") && d.signals > 0),
        "the fleet stream carries the cross-class baseline: {:?}",
        report.drift
    );
}

#[test]
fn degraded_execution_dumps_the_flight_recorder() {
    // Lose more of the sample than the recovery policy tolerates: the
    // session falls back to exact truth and the recorder freezes the
    // evidence under the `exec:degraded` reason.
    let obs = ObsHandle::isolated(Clock::mock());
    let mut faults = FaultConfig::quiescent(21);
    faults.worker_death_prob = 0.4;
    faults.recovery.max_retries = 0;
    faults.recovery.max_lost_fraction = 0.0;
    let s = AqpSession::new(SessionConfig {
        seed: 5,
        threads: 1,
        obs: obs.clone(),
        faults: Some(faults),
        slo: Some(coverage_slo()),
        ..Default::default()
    });
    s.register_table(conviva_sessions_table(20_000, 4, 5)).unwrap();
    s.build_samples("sessions", &[4_000], 9).unwrap();
    // A 40% death rate with zero tolerance yields a partial loss (and
    // hence a degraded-triggered exact fallback) within a few queries;
    // total losses surface as errors and are fine to skip here.
    let mut fallbacks = 0;
    for _ in 0..30 {
        let _ = s.execute("SELECT AVG(time) FROM sessions");
        fallbacks =
            obs.metrics.snapshot().counter(name::FAULTS_EXACT_FALLBACKS).unwrap_or(0);
        if fallbacks >= 1 {
            break;
        }
    }
    assert!(fallbacks >= 1, "no query in 30 suffered a partial loss");
    let dump = s
        .flight_recorder()
        .unwrap()
        .last_dump()
        .expect("degraded execution must dump the recorder");
    assert!(dump.contains("\"reason\":\"exec:degraded\""), "{dump}");
}

#[test]
fn slo_overhead_is_bounded_at_five_percent() {
    // Real clock, bootstrap-heavy workload: the engine's own evaluation
    // time (latency observation, audit scoring, drift updates, trace
    // recording) must stay under 5% of total query wall-clock.
    let obs = ObsHandle::isolated(Clock::real());
    let s = AqpSession::new(SessionConfig {
        seed: 11,
        threads: 1,
        run_diagnostics: false,
        obs: obs.clone(),
        audit: Some(AuditConfig { sample_rate: 0.1, seed: 2, ..Default::default() }),
        slo: Some(
            coverage_slo().with_latency(SloConfig::DEFAULT_CLASS, 0.95, 1_000.0),
        ),
        ..Default::default()
    });
    s.register_table(conviva_sessions_table(30_000, 4, 3)).unwrap();
    s.build_samples("sessions", &[6_000], 13).unwrap();
    for _ in 0..50 {
        s.execute("SELECT trimmed_mean(time) FROM sessions").unwrap();
    }
    let snap = obs.metrics.snapshot();
    let query_ms = snap.histogram(name::CORE_QUERY_MS).expect("queries ran").sum_ms;
    let eval = snap.histogram(name::SLO_EVAL_MS).expect("the engine ran");
    assert!(eval.count >= 50, "every query must be observed ({})", eval.count);
    let overhead = eval.sum_ms / (query_ms + eval.sum_ms);
    assert!(
        overhead < 0.05,
        "SLO evaluation took {:.2}% of wall-clock ({:.2}ms of {:.2}ms)",
        overhead * 100.0,
        eval.sum_ms,
        query_ms
    );
}

/// Hook for the CI `slo-smoke` job: when `SLO_SMOKE_SEED` is set, run
/// the miscalibrated replay with the recorder appending to
/// `target/slo-dumps/seed_<seed>.jsonl` so the job can byte-diff dump
/// artifacts across independent processes.
#[test]
fn dump_artifact_for_ci_smoke() {
    let Some(seed) = std::env::var("SLO_SMOKE_SEED").ok().and_then(|s| s.parse::<u64>().ok())
    else {
        return;
    };
    let dir = std::path::Path::new("target").join("slo-dumps");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("seed_{seed}.jsonl"));
    let _ = std::fs::remove_file(&path);
    let slo = SloConfig::new()
        .with_coverage(SloConfig::DEFAULT_CLASS, 0.95)
        .with_recorder(FlightRecorderConfig::at(8, &path));
    let obs = ObsHandle::isolated(Clock::mock());
    let s = miscalibrated_session(obs, slo);
    for _ in 0..40 {
        s.execute("SELECT MAX(payload_kb) FROM events").unwrap();
    }
    assert!(path.exists(), "the smoke run must write {}", path.display());
}

//! Vendored no-op stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on result types for
//! downstream consumers, but no serializer crate is in the dependency
//! tree, so nothing ever invokes serialization at run time. In offline
//! environments (no crates.io) this crate satisfies the imports and
//! derive attributes with zero behavior: the traits are blanket-implemented
//! markers and the derive macros expand to nothing.
//!
//! See `third_party/README.md` for the vendoring policy.

#![deny(unsafe_code)]
#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`. Blanket-implemented.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

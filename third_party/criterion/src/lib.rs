//! Vendored minimal stand-in for `criterion`, covering the subset of its
//! API the workspace's benches use.
//!
//! It runs each benchmark closure adaptively for a short, fixed wall-clock
//! budget and prints mean iteration time (plus throughput when set). No
//! statistical analysis, no HTML reports, no baselines — these benches
//! remain runnable and comparable across commits in offline environments,
//! which is all the workspace needs from them. See
//! `third_party/README.md` for the vendoring policy.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement budget per benchmark (after one warm-up batch).
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// Re-export matching criterion's `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n## {name}");
        BenchmarkGroup { _criterion: self, throughput: None }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), None, f);
        self
    }
}

/// Throughput annotation for a group (printed per element/byte).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Parameter-only id, for single-function sweeps.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a heading and throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stand-in's sample count is
    /// wall-clock bounded instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.throughput, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.to_string(), self.throughput, |b| f(b, input));
        self
    }

    /// End the group (printing is immediate; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it enough times to fill the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch-size calibration: target ~10ms batches.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let batch = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 1 << 20) as u64;

        let mut iters = 0u64;
        let begin = Instant::now();
        loop {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
            if begin.elapsed() >= MEASURE_BUDGET {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = begin.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher::default();
    f(&mut b);
    if b.iters == 0 {
        println!("{id:<44} (closure never called Bencher::iter)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let mut line = format!("{id:<44} {:>12}/iter  ({} iters)", fmt_ns(per_iter), b.iters);
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if count > 0 {
            let rate = count as f64 / (per_iter * 1e-9);
            line.push_str(&format!("  {:.3e} {unit}/s", rate));
        }
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` from one or more [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(5)));
        assert!(b.iters > 0);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4)).sample_size(10);
        g.bench_function("noop", |b| b.iter(|| black_box(1)));
        g.bench_with_input(BenchmarkId::new("with", 1), &7u32, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        g.finish();
    }
}

//! Vendored, deterministic, std-only stand-in for the `rand` crate.
//!
//! This workspace builds in offline environments where crates.io is not
//! reachable, so the subset of the `rand` API the workspace actually uses
//! is implemented here (see `third_party/README.md` for the policy):
//!
//! * [`Rng`] — the core trait (a 64-bit generator),
//! * [`RngExt`] — extension methods `random`, `random_range`,
//!   `random_bool` (blanket-implemented for every [`Rng`]),
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`,
//! * [`rngs::StdRng`] — xoshiro256++ seeded through SplitMix64.
//!
//! Everything is deterministic: there is deliberately **no** `rng()`,
//! `thread_rng`, or `from_entropy` entry point. The workspace's RNG
//! discipline (enforced by `cargo run -p xtask -- lint`) requires every
//! stream to derive from an explicit seed via `aqp_stats::rng`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

pub use rngs::StdRng;

/// A source of 64-bit random words. The only method generators implement.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Construct from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit seed (expanded internally, SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an [`Rng`] (the `Standard` distribution).
pub trait FromRng: Sized {
    /// Draw one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl FromRng for usize {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly samplable from half-open/closed bounds (the element
/// type of [`RngExt::random_range`]). Mirrors rand's `SampleUniform` so
/// integer-literal ranges infer their type from the call site.
pub trait SampleUniform: Sized {
    /// Uniform draw in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi },
                    "empty range in random_range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if inclusive && span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = if inclusive { span + 1 } else { span };
                // 128-bit multiply-shift keeps the modulo bias below 2^-64.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo <= hi, "empty range in random_range");
        let u = f64::from_rng(rng);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo <= hi, "empty range in random_range");
        let u = f32::from_rng(rng);
        lo + u * (hi - lo)
    }
}

/// Range shapes accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform draw of type `T` (`f64` in `[0,1)`, full-width integers).
    fn random<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform draw from a range, e.g. `rng.random_range(0..n)`.
    fn random_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let k = rng.random_range(3..17usize);
            assert!((3..17).contains(&k));
            let v = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.random_range(1.5..2.5f64);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}

//! Concrete generators.

use crate::{Rng, SeedableRng};

/// The workspace's standard generator: **xoshiro256++** (Blackman &
/// Vigna), seeded from a 64-bit value through SplitMix64 as the authors
/// recommend. Fast, 256-bit state, passes BigCrush; entirely
/// deterministic — there is no OS-entropy constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(b);
        }
        // An all-zero state would be a fixed point; reseed it.
        if s == [0, 0, 0, 0] {
            return Self::seed_from_u64(0);
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_seed_is_stable() {
        // Pin the stream so refactors cannot silently change every
        // experiment in the workspace.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = StdRng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn from_seed_all_zero_is_reseeded() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        // Must not be stuck at zero.
        assert!((0..8).any(|_| rng.next_u64() != 0));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}

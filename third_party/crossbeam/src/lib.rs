//! Vendored stand-in for `crossbeam`, backed by `std::thread::scope`.
//!
//! `aqp-exec` declares the dependency for scoped parallelism; since Rust
//! 1.63 the standard library's [`std::thread::scope`] covers that use, so
//! this stub only re-exposes it under the crossbeam-style name.
//!
//! See `third_party/README.md` for the vendoring policy.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod thread {
    //! Scoped threads, `crossbeam::thread::scope`-style.

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all spawned threads are joined before this returns.
    ///
    /// Unlike crossbeam's original, this delegates to
    /// [`std::thread::scope`] and therefore returns the closure's value
    /// directly rather than a `Result` (panics propagate as panics).
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
    {
        std::thread::scope(f)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_threads() {
        let data = [1, 2, 3];
        let total: i32 = crate::thread::scope(|s| {
            let h = s.spawn(|| data.iter().sum());
            h.join().expect("worker thread panicked")
        });
        assert_eq!(total, 6);
    }
}

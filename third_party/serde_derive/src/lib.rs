//! No-op `Serialize`/`Deserialize` derive macros for the vendored serde
//! stand-in. A derive macro's output is *added* to the item, so expanding
//! to nothing is a valid (and here, intended) implementation: the traits
//! in the `serde` stub are blanket-implemented markers.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Accepts and ignores `#[derive(Serialize)]` (plus serde attributes).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and ignores `#[derive(Deserialize)]` (plus serde attributes).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

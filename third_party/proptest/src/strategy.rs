//! Value-generation strategies.
//!
//! A [`Strategy`] produces one value per call from a [`TestRng`]. Ranges
//! of numbers, tuples, `&str` patterns, `vec`, and `option_of` cover the
//! workspace's property tests.

use crate::test_runner::TestRng;
use rand::RngExt;

/// Generates values of an associated type from a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng.random_range(self.clone())
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// `any::<T>()` — the full uniform domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.random()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.random()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.random()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite full-range doubles (proptest's any::<f64>() includes
        // specials; the workspace never relies on that).
        let m: f64 = rng.rng.random();
        let e = rng.rng.random_range(-300i32..300);
        let s = if rng.rng.random::<bool>() { 1.0 } else { -1.0 };
        s * m * 10f64.powi(e)
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `prop::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = rng.rng.random_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::option::of(strategy)` — `None` about a quarter of the time.
pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The strategy returned by [`option_of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.rng.random_range(0..4u32) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// String patterns: `".{lo,hi}"`-style length-bounded arbitrary strings.
///
/// Only the shapes used in this workspace are understood: `.{lo,hi}`,
/// `.*`, and `.+`; anything else generates strings of length 0..=64.
/// Characters mix printable ASCII with newline/quote/unicode edge cases —
/// the point of the consuming tests is "never panics on arbitrary input".
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_length_bounds(self);
        let n = rng.rng.random_range(lo..=hi);
        const EDGE: &[char] = &['"', '\'', '\\', '\n', '\t', 'é', '→', '\u{1f}', '%'];
        (0..n)
            .map(|_| {
                if rng.rng.random_range(0..8u32) == 0 {
                    EDGE[rng.rng.random_range(0..EDGE.len())]
                } else {
                    char::from(rng.rng.random_range(0x20u8..0x7f))
                }
            })
            .collect()
    }
}

fn parse_length_bounds(pattern: &str) -> (usize, usize) {
    if pattern == ".*" {
        return (0, 64);
    }
    if pattern == ".+" {
        return (1, 64);
    }
    let inner = pattern
        .strip_prefix(".{")
        .and_then(|rest| rest.strip_suffix('}'));
    if let Some(inner) = inner {
        if let Some((lo, hi)) = inner.split_once(',') {
            if let (Ok(lo), Ok(hi)) = (lo.trim().parse(), hi.trim().parse()) {
                return (lo, hi);
            }
        }
    }
    (0, 64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::{ProptestConfig, TestRunner};

    fn rng() -> TestRng {
        TestRunner::new("strategy-tests", &ProptestConfig::default()).next_case()
    }

    #[test]
    fn length_bounds() {
        assert_eq!(parse_length_bounds(".{0,200}"), (0, 200));
        assert_eq!(parse_length_bounds(".{3,7}"), (3, 7));
        assert_eq!(parse_length_bounds(".*"), (0, 64));
        assert_eq!(parse_length_bounds(".+"), (1, 64));
        assert_eq!(parse_length_bounds("[a-z]+"), (0, 64));
    }

    #[test]
    fn string_strategy_respects_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let s = ".{0,10}".generate(&mut r);
            assert!(s.chars().count() <= 10);
        }
    }

    #[test]
    fn vec_strategy_length() {
        let mut r = rng();
        for _ in 0..100 {
            let v = vec(0.0..1.0f64, 2..5).generate(&mut r);
            assert!(v.len() >= 2 && v.len() < 5);
        }
    }

    #[test]
    fn option_strategy_mixes() {
        let mut r = rng();
        let vals: Vec<Option<u32>> = (0..200).map(|_| option_of(0u32..9).generate(&mut r)).collect();
        assert!(vals.iter().any(Option::is_none));
        assert!(vals.iter().any(Option::is_some));
    }
}

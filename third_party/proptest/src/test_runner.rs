//! The per-test runner: configuration, deterministic per-case RNGs, and
//! failure reporting.

use rand::{Rng, SeedableRng, StdRng};

/// Subset of proptest's configuration the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// The RNG handed to strategies. Wraps the workspace's deterministic
/// [`StdRng`]; public field so strategies can sample directly.
#[derive(Debug, Clone)]
pub struct TestRng {
    /// The underlying generator.
    pub rng: StdRng,
}

impl TestRng {
    /// Derive deterministically from a root seed and case index.
    fn for_case(root: u64, case: u64) -> Self {
        // splitmix-style avalanche keeps sibling cases uncorrelated.
        let mut z = root ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        TestRng { rng: StdRng::seed_from_u64(z ^ (z >> 31)) }
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// Drives one property's cases and reports the failing case on panic.
#[derive(Debug)]
pub struct TestRunner {
    root_seed: u64,
    next_case: u64,
    current_case: Option<String>,
}

impl TestRunner {
    /// A runner whose stream is a deterministic function of the property
    /// name (FNV-1a), so failures reproduce without a regressions file.
    pub fn new(name: &str, _config: &ProptestConfig) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner { root_seed: h, next_case: 0, current_case: None }
    }

    /// The RNG for the next case.
    pub fn next_case(&mut self) -> TestRng {
        let rng = TestRng::for_case(self.root_seed, self.next_case);
        self.next_case += 1;
        rng
    }

    /// Record the generated inputs of the case about to run.
    pub fn enter_case(&mut self, description: String) {
        self.current_case = Some(description);
    }

    /// Mark the current case as passed.
    pub fn leave_case(&mut self) {
        self.current_case = None;
    }
}

impl Drop for TestRunner {
    fn drop(&mut self) {
        // If the property body panicked, the case description is still
        // set; surface it so the failure is diagnosable without shrinking.
        if std::thread::panicking() {
            if let Some(desc) = &self.current_case {
                eprintln!(
                    "proptest case {} failed with inputs: {}",
                    self.next_case.saturating_sub(1),
                    desc
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let cfg = ProptestConfig::default();
        let mut a = TestRunner::new("x", &cfg);
        let mut b = TestRunner::new("x", &cfg);
        assert_eq!(a.next_case().next_u64(), b.next_case().next_u64());
    }

    #[test]
    fn different_names_different_streams() {
        let cfg = ProptestConfig::default();
        let mut a = TestRunner::new("x", &cfg);
        let mut b = TestRunner::new("y", &cfg);
        assert_ne!(a.next_case().next_u64(), b.next_case().next_u64());
    }

    #[test]
    fn cases_differ() {
        let cfg = ProptestConfig::default();
        let mut a = TestRunner::new("x", &cfg);
        assert_ne!(a.next_case().next_u64(), a.next_case().next_u64());
    }
}

//! Vendored minimal property-testing harness, API-compatible with the
//! subset of `proptest` the workspace's tests use.
//!
//! Differences from real proptest, by design (offline, std-only, small):
//!
//! * **No shrinking.** A failing case reports its generated inputs and
//!   case number; it is not minimized.
//! * **Deterministic.** The RNG seed derives from the test name, so runs
//!   are reproducible bit-for-bit (matching the workspace's RNG
//!   discipline); `proptest-regressions` files are ignored.
//! * **String strategies** accept only the simple `.{lo,hi}` /
//!   `.*`-style patterns the tests use, generating printable-plus-edge
//!   characters rather than full regex-generated strings.
//!
//! See `third_party/README.md` for the vendoring policy.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::prop;
    pub use crate::proptest;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne};
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).

    pub mod collection {
        //! Collection strategies.
        pub use crate::strategy::vec;
    }

    pub mod option {
        //! `Option` strategies.
        pub use crate::strategy::option_of as of;
    }
}

/// Assert inside a property; reports the failing inputs via the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Declare property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn prop(x in 0..10usize, v in prop::collection::vec(0.0..1.0f64, 1..50)) {
///         prop_assert!(x < 10 && !v.is_empty());
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // Internal: expand each test fn under a captured config expression.
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(stringify!($name), &config);
                for _case in 0..config.cases {
                    let mut rng = runner.next_case();
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    runner.enter_case(format!(
                        concat!($(stringify!($arg), " = {:?}, ",)*),
                        $(&$arg,)*
                    ));
                    $body
                    runner.leave_case();
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_collections(
            x in 1usize..10,
            f in -2.0..2.0f64,
            v in prop::collection::vec(0u32..4, 1..20),
            o in prop::option::of(0i64..5),
            b in any::<bool>(),
            s in ".{0,40}",
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&w| w < 4));
            if let Some(i) = o {
                prop_assert!((0..5).contains(&i));
            }
            let _ = b;
            prop_assert!(s.chars().count() <= 40);
        }

        #[test]
        fn tuples_generate(p in (0u32..3, -1.0..1.0f64)) {
            prop_assert!(p.0 < 3);
            prop_assert!((-1.0..1.0).contains(&p.1));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let cfg = crate::test_runner::ProptestConfig::default();
        let mut r1 = crate::test_runner::TestRunner::new("det", &cfg);
        let mut r2 = crate::test_runner::TestRunner::new("det", &cfg);
        let s = 0.0..1.0f64;
        let a: Vec<f64> = (0..10).map(|_| s.generate(&mut r1.next_case())).collect();
        let b: Vec<f64> = (0..10).map(|_| s.generate(&mut r2.next_case())).collect();
        assert_eq!(a, b);
    }
}

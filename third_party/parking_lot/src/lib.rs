//! Vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the `parking_lot` API shape the workspace uses — `lock()` /
//! `read()` / `write()` returning guards directly, no `Result` — on top
//! of the standard library primitives. Lock poisoning is transparently
//! cleared (parking_lot has no poisoning), which is also the behavior the
//! callers want: a panicked writer must not wedge the catalog.
//!
//! See `third_party/README.md` for the vendoring policy.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutex whose `lock` returns the guard directly (no poison `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, clearing poison if a holder panicked.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader–writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, clearing poison if a holder panicked.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, clearing poison if a holder
    /// panicked.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poison_is_cleared() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

//! An operator's accuracy dashboard: the continuous auditor scoring a
//! live session's error bars against replayed ground truth.
//!
//! ```bash
//! cargo run --release --example audit_dashboard
//! ```
//!
//! Two sessions run side by side:
//!
//! * a **healthy** one (diagnostic on, closed-form aggregates) whose CI
//!   coverage should sit near the claimed 95%, and
//! * a **miscalibrated** one (diagnostic off, bootstrap MAX over a
//!   Pareto tail) whose coverage collapses — the auditor's sliding
//!   window catches it and fires a coverage alert, which is the signal
//!   an operator would page on.
//!
//! Both sessions also run the fleet SLO engine with a 95% CI-coverage
//! floor, so each panel shows the objective's burn rates and remaining
//! error budget next to the audit coverage bars.
//!
//! Both sessions also run the **self-hosted telemetry pipeline**
//! (`crates/introspect`): after the report panels, the dashboard turns
//! the AQP engine on itself and answers its accuracy questions by
//! querying the `_telemetry.audit` table — with the same error bars and
//! diagnostic verdicts it gives user queries.
//!
//! Pass `--metrics out.jsonl` to also dump the metrics registry
//! (including the `aqp.audit.*` and `aqp.slo.*` series) as JSONL.

use reliable_aqp::audit::{AuditConfig, AuditReport};
use reliable_aqp::obs::MetricsRegistry;
use reliable_aqp::slo::{SloConfig, SloReport};
use reliable_aqp::workload::{conviva_sessions_table, facebook_events_table};
use reliable_aqp::{AqpSession, IntrospectConfig, SessionConfig};

fn coverage_bar(cov: Option<f64>, width: usize) -> String {
    let mut s = String::new();
    let filled = (cov.unwrap_or(0.0).clamp(0.0, 1.0) * width as f64).round() as usize;
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

fn panel(title: &str, r: &AuditReport, slo: Option<&SloReport>) {
    println!("\n== {title} ==");
    println!(
        "   audited {} of {} approximate queries ({} results scored)",
        r.audited, r.considered, r.overall.scored
    );
    for k in std::iter::once(&r.overall).chain(r.keys.iter()) {
        let cov = k.coverage;
        println!(
            "   {:<18} [{}] {}  mean err-ratio {}",
            k.key,
            coverage_bar(cov, 20),
            cov.map(|c| format!("{:5.1}%", c * 100.0)).unwrap_or_else(|| "    -".to_string()),
            k.mean_error_ratio.map(|m| format!("{m:.2}")).unwrap_or_else(|| "-".to_string()),
        );
    }
    if let Some(slo) = slo {
        for o in &slo.objectives {
            println!(
                "   slo {:<24} burn(fast) {:>6.2}  burn(slow) {:>6.2}  budget {:>3.0}%{}",
                o.id,
                o.burn_fast,
                o.burn_slow,
                o.budget_remaining * 100.0,
                if o.page_latched {
                    "  PAGE"
                } else if o.warn_latched {
                    "  WARN"
                } else {
                    ""
                },
            );
        }
    }
    if r.alerts.is_empty() {
        println!("   alerts: none");
    } else {
        for a in &r.alerts {
            println!("   ALERT  {a}");
        }
    }
}

/// Answer introspection queries through the session itself and print
/// each estimate with its error bar and diagnostic verdict.
fn introspect_panel(title: &str, session: &AqpSession, queries: &[&str]) {
    println!("\n== {title} ==");
    for sql in queries {
        match session.execute(sql) {
            Ok(a) => {
                println!("   {sql}");
                println!("      [{:?}, sample {}/{}]", a.mode, a.sample_rows, a.population_rows);
                for g in &a.groups {
                    for agg in &g.aggs {
                        let ci = agg
                            .ci
                            .as_ref()
                            .map(|c| format!(" ± {:.4} @{:.0}%", c.half_width, c.confidence * 100.0))
                            .unwrap_or_default();
                        let verdict = match &agg.diagnostic {
                            Some(d) if d.accepted => "  [diagnostic ok]",
                            Some(_) => "  [diagnostic REJECTED]",
                            None => "",
                        };
                        println!("      {:<12} {} = {:.4}{}{}", g.key, agg.name, agg.estimate, ci, verdict);
                    }
                }
            }
            Err(e) => println!("   {sql}\n      error: {e}"),
        }
    }
}

fn main() {
    let metrics_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--metrics")
            .and_then(|i| args.get(i + 1).cloned())
    };
    let rows = 40_000;

    // Healthy session: diagnostic on, 20% of queries audited.
    println!("healthy session: closed-form aggregates, diagnostic on ...");
    let healthy = AqpSession::new(SessionConfig {
        seed: 1,
        threads: 1,
        diagnostic_p: 50,
        audit: Some(AuditConfig {
            sample_rate: 0.5,
            window: 50,
            min_window_for_alert: 10,
            column_families: vec![("time".into(), "lognormal".into()), ("*".into(), "count".into())],
            ..Default::default()
        }),
        slo: Some(SloConfig::new().with_coverage(SloConfig::DEFAULT_CLASS, 0.95)),
        introspect: Some(IntrospectConfig {
            min_rows_for_sampling: 32,
            ..IntrospectConfig::new().with_class("dashboards", "GROUP BY")
        }),
        ..Default::default()
    });
    healthy.register_table(conviva_sessions_table(rows, 8, 1)).expect("register");
    healthy.build_samples("sessions", &[rows / 5], 6).expect("samples");
    for i in 0..120 {
        let sql = match i % 3 {
            0 => "SELECT AVG(time) FROM sessions",
            1 => "SELECT SUM(time) FROM sessions",
            _ => "SELECT COUNT(*) FROM sessions WHERE is_mobile = true",
        };
        healthy.execute(sql).expect("query");
    }

    // Miscalibrated session: unchecked bootstrap MAX over a Pareto tail,
    // audited aggressively.
    println!("miscalibrated session: unchecked MAX over a Pareto tail ...");
    let suspect = AqpSession::new(SessionConfig {
        seed: 2,
        threads: 1,
        bootstrap_k: 40,
        run_diagnostics: false,
        audit: Some(AuditConfig {
            sample_rate: 0.5,
            window: 50,
            min_window_for_alert: 10,
            column_families: vec![("payload_kb".into(), "pareto".into())],
            ..Default::default()
        }),
        slo: Some(SloConfig::new().with_coverage(SloConfig::DEFAULT_CLASS, 0.95)),
        introspect: Some(IntrospectConfig {
            min_rows_for_sampling: 32,
            ..IntrospectConfig::new()
        }),
        ..Default::default()
    });
    suspect.register_table(facebook_events_table(rows, 8, 2)).expect("register");
    suspect.build_samples("events", &[rows / 5], 7).expect("samples");
    for _ in 0..60 {
        suspect.execute("SELECT MAX(payload_kb) FROM events").expect("query");
    }

    let healthy_slo = healthy.slo_report();
    let suspect_slo = suspect.slo_report();
    panel(
        "healthy (claimed 95% confidence)",
        &healthy.audit_report().expect("auditing on"),
        healthy_slo.as_ref(),
    );
    panel(
        "miscalibrated (error bars unchecked)",
        &suspect.audit_report().expect("auditing on"),
        suspect_slo.as_ref(),
    );

    // The dashboard now asks the engine about itself: the same audit
    // evidence, answered as AQP queries over `_telemetry.audit` with
    // error bars of their own.
    introspect_panel(
        "self-hosted: the healthy session queries its own audit trail",
        &healthy,
        &[
            "SELECT family, AVG(covered) FROM _telemetry.audit GROUP BY family",
            "SELECT AVG(error_ratio) FROM _telemetry.audit",
            "SELECT stage, AVG(wall_ms) FROM _telemetry.spans GROUP BY stage",
        ],
    );
    introspect_panel(
        "self-hosted: the miscalibrated session cannot hide from itself",
        &suspect,
        &[
            "SELECT AVG(covered) FROM _telemetry.audit",
            "SELECT COUNT(*) FROM _telemetry.queries",
        ],
    );

    println!(
        "\nThe paper's point, continuously: coverage that tracks the claimed confidence means \
         the error bars can be trusted; a collapsing window means they cannot — and the \
         auditor says so while the system is running."
    );

    if let Some(path) = metrics_path {
        let snapshot = MetricsRegistry::global().snapshot();
        match std::fs::write(&path, snapshot.to_jsonl()) {
            Ok(()) => println!("metrics snapshot written to {path}"),
            Err(e) => eprintln!("failed writing metrics snapshot to {path}: {e}"),
        }
    }
}

//! An operator's fleet dashboard: SLO burn rates, error budgets, drift
//! verdicts, and the flight recorder's last dump — over a Facebook +
//! Conviva query mix with fault injection switched on.
//!
//! ```bash
//! cargo run --release --example slo_dashboard -- --queries 150 --dump dumps.jsonl
//! ```
//!
//! The session runs on the mock clock with a fixed seed, so the whole
//! dashboard — alert sequence, burn-rate table, drift signals, and every
//! recorder dump byte — is reproducible across processes; CI diffs two
//! runs' dump artifacts. The replay has two phases:
//!
//! * a **healthy** mix (closed-form AVG/SUM/COUNT over the Conviva and
//!   Facebook tables) whose CI coverage holds the 95% floor, then
//! * a **miscalibrated** tail (unchecked bootstrap `MAX(payload_kb)`
//!   over a Pareto column) whose coverage collapses: the drift
//!   detectors flag the stream within a handful of queries, the burn
//!   rate crosses the page threshold, and every latched alert freezes a
//!   flight-recorder dump.
//!
//! The session also runs the self-hosted telemetry pipeline
//! (`crates/introspect`): the closing panel answers fleet questions —
//! alert counts by severity, fault mix, span volume per stage — by
//! running AQP queries over the session's own `_telemetry.*` tables.
//!
//! Flags: `--queries N` total replayed queries (default 150),
//! `--dump PATH` appends recorder dumps there, `--log PATH` routes the
//! JSONL alert log there, `--metrics PATH` writes a final metrics
//! snapshot.

use reliable_aqp::audit::AuditConfig;
use reliable_aqp::faults::FaultConfig;
use reliable_aqp::obs::{Clock, FlightRecorderConfig, ObsHandle};
use reliable_aqp::slo::{SloConfig, SloLogConfig};
use reliable_aqp::workload::{conviva_sessions_table, facebook_events_table};
use reliable_aqp::{AqpSession, IntrospectConfig, SessionConfig};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let queries: usize = flag(&args, "--queries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(150);
    let dump_path = flag(&args, "--dump");
    let log_path = flag(&args, "--log");
    let metrics_path = flag(&args, "--metrics");

    // Mock clock + fixed seeds: bit-identical replay across processes.
    let obs = ObsHandle::isolated(Clock::mock());

    let mut slo = SloConfig::new()
        .with_class("tail", "MAX(")
        .with_class("interactive", "SELECT AVG(")
        .with_latency("interactive", 0.95, 40.0)
        .with_coverage("interactive", 0.95)
        .with_coverage("tail", 0.95)
        .with_coverage(SloConfig::DEFAULT_CLASS, 0.95);
    if let Some(path) = &log_path {
        slo = slo.with_log(SloLogConfig::at(path));
    }
    slo = slo.with_recorder(match &dump_path {
        Some(path) => FlightRecorderConfig::at(8, path),
        None => FlightRecorderConfig { capacity: 8, path: None },
    });

    // Deterministic fault injection: enough truncation to degrade some
    // scans (widened error bars, occasional exact fallback), plus a few
    // transient errors the retry policy absorbs. Fault draws are fixed
    // per (seed, task, attempt); seed 3 is a stream where the 25%
    // truncation draw actually fires on this table's partitions.
    let mut faults = FaultConfig::quiescent(3);
    faults.truncation_prob = 0.25;
    faults.truncation_keep = 0.5;
    faults.transient_error_prob = 0.05;

    let session = AqpSession::new(SessionConfig {
        seed: 2,
        threads: 1,
        bootstrap_k: 40,
        run_diagnostics: false, // the tail phase's bad bars go unchecked
        obs: obs.clone(),
        audit: Some(AuditConfig {
            sample_rate: 1.0,
            window: 100,
            min_window_for_alert: 50,
            column_families: vec![
                ("time".into(), "lognormal".into()),
                ("payload_kb".into(), "pareto".into()),
                ("*".into(), "count".into()),
            ],
            ..Default::default()
        }),
        faults: Some(faults),
        slo: Some(slo),
        introspect: Some(IntrospectConfig {
            min_rows_for_sampling: 32,
            ..IntrospectConfig::new().with_class("tail", "MAX(")
        }),
        ..Default::default()
    });

    let rows = 40_000;
    session.register_table(conviva_sessions_table(rows, 8, 1)).expect("register");
    session.register_table(facebook_events_table(rows, 8, 2)).expect("register");
    session.build_samples("sessions", &[rows / 5], 6).expect("samples");
    session.build_samples("events", &[rows / 5], 7).expect("samples");

    let healthy = queries * 2 / 3;
    println!("phase 1: healthy FB/Conviva mix ({healthy} queries, faults on) ...");
    for i in 0..healthy {
        let sql = match i % 4 {
            0 => "SELECT AVG(time) FROM sessions",
            1 => "SELECT SUM(bytes) FROM sessions",
            2 => "SELECT AVG(payload_kb) FROM events",
            _ => "SELECT COUNT(*) FROM sessions WHERE is_mobile = true",
        };
        session.execute(sql).expect("query");
    }

    let tail = queries - healthy;
    println!("phase 2: miscalibrated tail ({tail} unchecked MAX(payload_kb) queries) ...");
    for _ in 0..tail {
        session.execute("SELECT MAX(payload_kb) FROM events").expect("query");
    }

    let report = session.slo_report().expect("slo enabled");
    println!("\n== fleet SLO status ==");
    print!("{}", report.render_table());

    if let Some(audit) = session.audit_report() {
        println!("\n== audit cross-check ==");
        println!(
            "   audited {} of {} queries; overall coverage {}",
            audit.audited,
            audit.considered,
            audit
                .overall
                .coverage
                .map(|c| format!("{:.1}%", c * 100.0))
                .unwrap_or_else(|| "-".to_string()),
        );
        for a in &audit.alerts {
            println!("   AUDIT ALERT  {a}");
        }
    }

    let recorder = session.flight_recorder().expect("slo enabled");
    println!("\n== flight recorder ==");
    println!("   traces retained: {}", recorder.retained());
    match recorder.last_dump() {
        Some(dump) => {
            let lines = dump.lines().count();
            let header = dump.lines().next().unwrap_or("");
            println!("   last dump: {lines} lines");
            println!("   {header}");
        }
        None => println!("   no dump fired"),
    }
    if let Some(path) = &dump_path {
        println!("   dump artifact appended to {path}");
    }

    // The fleet questions an operator would grep logs for, answered by
    // the engine itself over its own telemetry tables.
    println!("\n== self-hosted telemetry (AQP over _telemetry.*) ==");
    for sql in [
        "SELECT severity, COUNT(*) FROM _telemetry.slo_alerts GROUP BY severity",
        "SELECT kind, COUNT(*) FROM _telemetry.faults GROUP BY kind",
        "SELECT stage, COUNT(*) FROM _telemetry.spans GROUP BY stage",
        "SELECT class, AVG(sample_rows) FROM _telemetry.queries GROUP BY class",
    ] {
        match session.execute(sql) {
            Ok(a) => {
                println!("   {sql}");
                println!("      [{:?}, sample {}/{}]", a.mode, a.sample_rows, a.population_rows);
                for g in &a.groups {
                    for agg in &g.aggs {
                        let ci = agg
                            .ci
                            .as_ref()
                            .filter(|c| c.half_width > 0.0)
                            .map(|c| format!(" ± {:.1}", c.half_width))
                            .unwrap_or_default();
                        println!("      {:<16} {} = {:.1}{}", g.key, agg.name, agg.estimate, ci);
                    }
                }
            }
            Err(e) => println!("   {sql}\n      error: {e}"),
        }
    }

    println!(
        "\nDrift flags the miscalibrated stream within a handful of queries; the burn \
         rate pages once the budget is burning ~14x too fast; and every alert ships \
         with a frozen flight-recorder artifact for post-hoc debugging."
    );

    if let Some(path) = metrics_path {
        let snapshot = obs.metrics.snapshot();
        match std::fs::write(&path, snapshot.to_jsonl()) {
            Ok(()) => println!("metrics snapshot written to {path}"),
            Err(e) => eprintln!("failed writing metrics snapshot to {path}: {e}"),
        }
    }
}

//! A tour of the three error-estimation techniques of §2 on one dataset:
//! closed-form CLT, Poissonized bootstrap, and Hoeffding bounds — showing
//! why Fig. 1 finds large-deviation bounds 1–2 orders of magnitude too
//! conservative, and where each technique's intervals land relative to
//! the true sampling distribution.
//!
//! ```bash
//! cargo run --release --example error_estimation_tour
//! ```

use reliable_aqp::stats::accuracy::{evaluate_error_estimator, AccuracyConfig};
use reliable_aqp::stats::ci::symmetric_half_width;
use reliable_aqp::stats::dist::sample_lognormal;
use reliable_aqp::stats::error_estimator::{EstimationMethod, Theta};
use reliable_aqp::stats::estimator::{Aggregate, SampleContext};
use reliable_aqp::stats::large_deviation::{Inequality, RangeHint};
use reliable_aqp::stats::rng::{rng_from_seed, SeedStream};
use reliable_aqp::stats::sampling::{gather, with_replacement_indices};
use reliable_aqp::stats::ErrorEstimator;

fn main() {
    // Population: lognormal "session minutes".
    let mut rng = rng_from_seed(1);
    let population: Vec<f64> =
        (0..2_000_000).map(|_| sample_lognormal(&mut rng, 1.0, 0.8)).collect();
    let pop_max = population.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let n = 50_000;
    println!("population: 2M lognormal values, sample size n = {n}\n");

    // The true sampling distribution of AVG, by brute force.
    let theta = Aggregate::Avg;
    let pop_ctx = SampleContext::population(population.len());
    let truth_center =
        reliable_aqp::stats::estimator::QueryEstimator::estimate(&theta, &population, &pop_ctx);
    let ctx = SampleContext::new(n, population.len());
    let draws: Vec<f64> = (0..300)
        .map(|i| {
            let mut r = rng_from_seed(1000 + i);
            let idx = with_replacement_indices(&mut r, n, population.len());
            reliable_aqp::stats::estimator::QueryEstimator::estimate(
                &theta,
                &gather(&population, &idx),
                &ctx,
            )
        })
        .collect();
    let true_hw = symmetric_half_width(truth_center, &draws, 0.95);
    println!("ground truth: AVG = {truth_center:.5}, true 95% half-width = {true_hw:.5}\n");

    // One sample, three techniques.
    let mut r = rng_from_seed(7);
    let idx = with_replacement_indices(&mut r, n, population.len());
    let sample = gather(&population, &idx);
    let methods: Vec<(&str, EstimationMethod)> = vec![
        ("closed-form CLT", EstimationMethod::ClosedForm),
        ("bootstrap (K=300)", EstimationMethod::Bootstrap { k: 300 }),
        ("jackknife (g=100)", EstimationMethod::Jackknife { g: 100 }),
        (
            "Hoeffding bound",
            EstimationMethod::LargeDeviation {
                inequality: Inequality::Hoeffding,
                range: RangeHint::new(0.0, pop_max),
            },
        ),
        (
            "Bernstein bound",
            EstimationMethod::LargeDeviation {
                inequality: Inequality::Bernstein,
                range: RangeHint::new(0.0, pop_max),
            },
        ),
    ];
    println!("{:<20} {:>12} {:>12} {:>10}", "technique", "half-width", "vs truth", "verdict");
    for (name, m) in &methods {
        let ci = m
            .confidence_interval(&mut rng_from_seed(9), &sample, &ctx, &Theta::Builtin(theta), 0.95)
            .expect("applicable");
        let ratio = ci.half_width / true_hw;
        let verdict = if ratio > 1.2 {
            "pessimistic"
        } else if ratio < 0.8 {
            "optimistic"
        } else {
            "accurate"
        };
        println!("{name:<20} {:>12.5} {:>11.1}x {:>10}", ci.half_width, ratio, verdict);
    }

    // The §3 protocol: does each technique stay accurate across many
    // samples?
    println!("\nfull §3-style evaluation (100 samples each):");
    let cfg = AccuracyConfig { sample_rows: n, runs: 100, truth_runs: 600, ..AccuracyConfig::fast() };
    for (name, m) in &methods {
        let report = evaluate_error_estimator(
            &population,
            &Theta::Builtin(theta),
            m,
            &cfg,
            SeedStream::new(11),
        );
        println!(
            "{name:<20} verdict={:?} optimistic-frac={:.2} pessimistic-frac={:.2}",
            report.verdict, report.optimistic_frac, report.pessimistic_frac
        );
    }
}

//! A Conviva-style operations dashboard: many aggregates per refresh,
//! all answered from one sample at interactive latency, with per-result
//! reliability verdicts.
//!
//! ```bash
//! cargo run --release --example conviva_dashboard
//! ```
//!
//! This is the workload shape the paper's introduction motivates:
//! exploratory/monitoring queries where "close-enough" answers in a
//! couple of seconds beat exact answers in minutes — as long as the
//! system can tell which error bars to trust.
//!
//! Pass `--metrics out.jsonl` to dump the refresh's metrics snapshot
//! (per-stage latency histograms, fallback counters) as JSONL.

use reliable_aqp::{AqpSession, SessionConfig};
use reliable_aqp::workload::conviva_sessions_table;

fn main() {
    let rows = 1_000_000;
    println!("ingesting {rows} media sessions ...");
    let session = AqpSession::new(SessionConfig { seed: 7, ..Default::default() });
    session.register_table(conviva_sessions_table(rows, 16, 3)).expect("register");
    session.build_samples("sessions", &[rows / 25], 11).expect("samples");

    let panels = [
        ("Average session time (s)", "SELECT AVG(time) FROM sessions"),
        ("Sessions by city", "SELECT city, COUNT(*) FROM sessions GROUP BY city"),
        ("Mobile session share of traffic", "SELECT SUM(bytes) FROM sessions WHERE is_mobile = true"),
        ("p99 session time", "SELECT PERCENTILE(time, 99) FROM sessions"),
        ("Worst buffering (MAX)", "SELECT MAX(buffer_ratio) FROM sessions"),
        ("Typical engagement (trimmed mean)", "SELECT trimmed_mean(time) FROM sessions"),
        (
            "Mean per-user volume (nested)",
            "SELECT AVG(s) FROM (SELECT SUM(bytes) AS s FROM sessions GROUP BY user_id)",
        ),
    ];

    let clock = reliable_aqp::obs::Clock::real();
    let mut total = std::time::Duration::ZERO;
    for (title, sql) in panels {
        let t = clock.now();
        match session.execute(sql) {
            Ok(answer) => {
                let wall = clock.now().duration_since(t);
                total += wall;
                println!("== {title} ==  [{:?}, {:?}]", answer.mode, wall);
                // Show at most 4 groups per panel.
                for g in answer.groups.iter().take(4) {
                    for a in &g.aggs {
                        let key =
                            if g.key.is_empty() { String::new() } else { format!("{}: ", g.key) };
                        match &a.ci {
                            Some(ci) => println!(
                                "   {key}{:.3} ± {:.3} ({:?})",
                                a.estimate, ci.half_width, a.method
                            ),
                            None => println!("   {key}{:.3} (exact)", a.estimate),
                        }
                    }
                }
                if answer.groups.len() > 4 {
                    println!("   ... {} more groups", answer.groups.len() - 4);
                }
                if answer.fell_back {
                    println!("   !! diagnostic rejected the error bars -> served exact answer");
                }
            }
            Err(e) => println!("== {title} == failed: {e}"),
        }
    }
    println!("\ndashboard refresh total: {total:?}");

    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1).cloned())
    {
        let snapshot = reliable_aqp::obs::MetricsRegistry::global().snapshot();
        match std::fs::write(&path, snapshot.to_jsonl()) {
            Ok(()) => println!("metrics snapshot written to {path}"),
            Err(e) => eprintln!("failed writing metrics snapshot to {path}: {e}"),
        }
    }
}

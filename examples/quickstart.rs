//! Quickstart: approximate queries with validated error bars.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a synthetic Conviva-style sessions table, maintains two uniform
//! samples, and answers the paper's running example
//! (`SELECT AVG(Time) FROM Sessions WHERE City = 'NYC'`) three ways:
//! exactly, approximately with a 10% error bound, and approximately with
//! a tight bound that forces the bigger sample.
//!
//! Pass `--metrics out.jsonl` to dump the session's metrics snapshot
//! (counters, fallback rates, latency percentiles) as JSONL. Pass
//! `--explain` (annotated text tree) or `--explain-json` (one JSON
//! object per query) to print the EXPLAIN ANALYZE operator profile of
//! each query. Pass `--flame out.folded` to enable continuous profiling
//! and write the cumulative operator profile as folded flamegraph
//! stacks, or `--chrome-trace out.json` to write the last query's trace
//! in chrome://tracing format (load it at <https://ui.perfetto.dev>).

use reliable_aqp::obs::{Clock, MetricsRegistry};
use reliable_aqp::prof::export::{chrome_trace, folded_stacks};
use reliable_aqp::workload::conviva_sessions_table;
use reliable_aqp::{AqpAnswer, AqpSession, ContProfConfig, ExplainMode, SessionConfig};

/// Print an answer's operator profile per the chosen mode.
fn print_profile(answer: &AqpAnswer, mode: ExplainMode) {
    let Some(profile) = &answer.profile else { return };
    match mode {
        ExplainMode::Text => println!("EXPLAIN ANALYZE:\n{}", profile.render_text()),
        ExplainMode::Json => println!("{}", profile.to_json()),
        ExplainMode::Off => {}
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let metrics_path = flag_value("--metrics");
    let flame_path = flag_value("--flame");
    let chrome_path = flag_value("--chrome-trace");
    let explain = if args.iter().any(|a| a == "--explain-json") {
        ExplainMode::Json
    } else if args.iter().any(|a| a == "--explain") {
        ExplainMode::Text
    } else {
        ExplainMode::Off
    };
    let clock = Clock::real();
    let rows = 2_000_000;
    println!("building a {rows}-row sessions table ...");
    let table = conviva_sessions_table(rows, 16, 1);

    // Seed chosen so the diagnostic accepts the benign AVG (most seeds do;
    // a few land in its ~few-percent false-negative band and would fall
    // back to exact, which is safe but defeats this demo).
    let session = AqpSession::new(SessionConfig {
        seed: 1,
        explain,
        // `--flame` wants the fleet view, so profile continuously with
        // the error-bounded queries split from the plain ones.
        contprof: flame_path
            .is_some()
            .then(|| ContProfConfig::new().with_class("bounded", "WITHIN")),
        ..Default::default()
    });
    session.register_table(table).expect("register");
    println!("building uniform samples (2.5% and 5%) ...");
    session.build_samples("sessions", &[rows / 40, rows / 20], 7).expect("sample");

    let query = "SELECT AVG(time) FROM sessions WHERE city = 'NYC'";

    // Exact ground truth (scans everything).
    let t0 = clock.now();
    let exact_session = AqpSession::new(SessionConfig::default());
    exact_session
        .register_table(conviva_sessions_table(rows, 16, 1))
        .expect("register");
    let exact = exact_session.execute(query).expect("exact");
    println!(
        "\nEXACT      {query}\n  -> {:.4}   ({:?} wall)",
        exact.scalar().unwrap().estimate,
        clock.now().duration_since(t0)
    );

    // Approximate with a 10% error bound: picks the smallest sufficient
    // sample, runs the single-scan error estimation + diagnostic.
    let t1 = clock.now();
    let approx = session
        .execute(&format!("{query} WITHIN 10% ERROR AT CONFIDENCE 95%"))
        .expect("approx");
    println!(
        "\nAPPROX 10% {query}\n{}  ({:?} wall)",
        approx.summary(),
        clock.now().duration_since(t1)
    );
    print_profile(&approx, explain);

    // Tight 1% bound: needs the larger sample.
    let t2 = clock.now();
    let tight = session
        .execute(&format!("{query} WITHIN 1% ERROR AT CONFIDENCE 95%"))
        .expect("approx tight");
    println!(
        "APPROX 1%  {query}\n{}  ({:?} wall)",
        tight.summary(),
        clock.now().duration_since(t2)
    );
    print_profile(&tight, explain);

    println!("plan used:\n{}", tight.plan);
    println!("lifecycle trace of the tight query:\n{}", tight.trace.render_table());
    let truth = exact.scalar().unwrap().estimate;
    let est = approx.scalar().unwrap().estimate;
    println!("relative deviation from truth at 10% bound: {:.3}%", 100.0 * (est - truth).abs() / truth);

    if let Some(path) = metrics_path {
        let snapshot = MetricsRegistry::global().snapshot();
        match std::fs::write(&path, snapshot.to_jsonl()) {
            Ok(()) => println!("metrics snapshot written to {path}"),
            Err(e) => eprintln!("failed writing metrics snapshot to {path}: {e}"),
        }
    }
    if let Some(path) = flame_path {
        let cum = session.cumulative_profile().expect("contprof is on under --flame");
        match std::fs::write(&path, folded_stacks(&cum)) {
            Ok(()) => println!(
                "folded stacks written to {path} ({} paths; render with flamegraph.pl or inferno)",
                cum.paths()
            ),
            Err(e) => eprintln!("failed writing folded stacks to {path}: {e}"),
        }
    }
    if let Some(path) = chrome_path {
        match std::fs::write(&path, chrome_trace(&tight.trace)) {
            Ok(()) => println!("chrome trace written to {path} (open at https://ui.perfetto.dev)"),
            Err(e) => eprintln!("failed writing chrome trace to {path}: {e}"),
        }
    }
}

//! An interactive AQP shell over the synthetic sessions table.
//!
//! ```bash
//! cargo run --release --example aqp_shell
//! ```
//!
//! Commands:
//!
//! ```text
//! SELECT ...;                 run a query (approximate when samples exist)
//! \sample <rows>              build a uniform sample of <rows> rows
//! \strata <column> <rows>     build a stratified sample on <column>
//! \progressive <rel_err> SELECT ...
//!                             grow the sample until the bound is met
//! \csv <path> <name>          load a CSV file as a new table
//! \schema                     show the sessions schema
//! \introspect                 summarize the shell's own telemetry
//!                             (`_telemetry.*` tables, AQP over AQP)
//! \quit                       exit
//! ```
//!
//! The self-hosted telemetry pipeline is always on: every query folds
//! its spans, timings, and outcomes into the `_telemetry.*` tables, so
//! `SELECT stage, AVG(wall_ms) FROM _telemetry.spans GROUP BY stage`
//! works like any other query — error bars included.
//!
//! Launch with `--metrics out.jsonl` to dump the session's metrics
//! snapshot as JSONL when the shell exits. Launch with `--explain`
//! (annotated text tree) or `--explain-json` (one JSON object per
//! query) to print the EXPLAIN ANALYZE operator profile after every
//! query. Launch with `--flame out.folded` to profile the whole shell
//! session continuously and write folded flamegraph stacks on exit, or
//! `--chrome-trace out.json` to write the last query's trace in
//! chrome://tracing format on exit.

use std::io::{BufRead, Write};

use reliable_aqp::prof::export::{chrome_trace, folded_stacks};
use reliable_aqp::workload::conviva_sessions_table;
use reliable_aqp::{AqpSession, ContProfConfig, ExplainMode, IntrospectConfig, SessionConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let metrics_path = flag_value("--metrics");
    let flame_path = flag_value("--flame");
    let chrome_path = flag_value("--chrome-trace");
    let explain = if args.iter().any(|a| a == "--explain-json") {
        ExplainMode::Json
    } else if args.iter().any(|a| a == "--explain") {
        ExplainMode::Text
    } else {
        ExplainMode::Off
    };
    let rows = 1_000_000;
    eprintln!("loading {rows}-row synthetic `sessions` table ...");
    let session = AqpSession::new(SessionConfig {
        seed: 1,
        explain,
        // `--flame` profiles every query of the shell session; split the
        // error-bounded queries from the plain ones, like quickstart.
        contprof: flame_path
            .is_some()
            .then(|| ContProfConfig::new().with_class("bounded", "WITHIN")),
        // The shell watches itself: telemetry folds into `_telemetry.*`
        // so the operator can query the session about the session.
        introspect: Some(IntrospectConfig::new().with_class("bounded", "WITHIN")),
        ..Default::default()
    });
    session.register_table(conviva_sessions_table(rows, 16, 1)).expect("register");
    eprintln!(
        "ready. type \\schema for columns, \\sample 50000 to enable approximation, \\introspect \
         to query the shell's own telemetry."
    );

    let mut last_trace = None;
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("aqp> ");
        let _ = out.flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\quit" || line == "\\q" {
            break;
        }
        if line == "\\introspect" {
            // A canned panel over the session's own telemetry; each of
            // these is an ordinary AQP query an operator could type.
            for sql in [
                "SELECT COUNT(*) FROM _telemetry.queries",
                "SELECT class, AVG(wall_ms) FROM _telemetry.queries GROUP BY class",
                "SELECT stage, AVG(wall_ms) FROM _telemetry.spans GROUP BY stage",
            ] {
                println!("  {sql}");
                match session.execute(sql) {
                    Ok(a) => print!("{}", a.summary()),
                    Err(e) => println!("  (no telemetry yet: {e})"),
                }
            }
            println!("  (tables: _telemetry.spans, queries, metrics, audit, faults, slo_alerts, ops)");
            continue;
        }
        if line == "\\schema" {
            let t = session.catalog().table("sessions").expect("table");
            for f in t.schema().fields() {
                println!("  {}: {}", f.name, f.data_type.name());
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\csv ") {
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some(path), Some(name)) => {
                    match reliable_aqp::storage::read_csv_file(path, name, 8)
                        .map_err(reliable_aqp::exec::ExecError::Storage)
                    {
                        Ok(table) => {
                            let rows = table.num_rows();
                            match session.register_table(table) {
                                Ok(()) => println!("loaded {rows} rows as table {name}"),
                                Err(e) => println!("error: {e}"),
                            }
                        }
                        Err(e) => println!("error: {e}"),
                    }
                }
                _ => println!("usage: \\csv <path> <table_name>"),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\sample ") {
            match rest.trim().parse::<usize>() {
                Ok(n) => match session.build_samples("sessions", &[n], 7) {
                    Ok(()) => println!("built a uniform sample of {n} rows"),
                    Err(e) => println!("error: {e}"),
                },
                Err(_) => println!("usage: \\sample <rows>"),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\strata ") {
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next().and_then(|r| r.parse::<usize>().ok())) {
                (Some(col), Some(n)) => {
                    match session.build_stratified_sample("sessions", col, n, 11) {
                        Ok(()) => println!("built a stratified sample on {col} ({n} rows/stratum)"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                _ => println!("usage: \\strata <column> <rows_per_stratum>"),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\progressive ") {
            let mut parts = rest.splitn(2, ' ');
            match (parts.next().and_then(|e| e.parse::<f64>().ok()), parts.next()) {
                (Some(target), Some(sql)) => {
                    match session.execute_progressive(sql.trim_end_matches(';'), target) {
                        Ok(r) => {
                            for step in &r.steps {
                                println!(
                                    "  step: {} rows, worst rel err {:?}, satisfied {}",
                                    step.sample_rows, step.worst_relative_error, step.satisfied
                                );
                            }
                            println!("{}", r.final_answer().summary());
                        }
                        Err(e) => println!("error: {e}"),
                    }
                }
                _ => println!("usage: \\progressive <rel_err> SELECT ..."),
            }
            continue;
        }
        // EXPLAIN prefix.
        if line.len() >= 7 && line[..7].eq_ignore_ascii_case("explain") {
            match session.explain(line[7..].trim_end_matches(';')) {
                Ok(plan) => print!("{plan}"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        // Plain SQL.
        match session.execute(line.trim_end_matches(';')) {
            Ok(answer) => {
                print!("{}", answer.summary());
                println!("({:?})", answer.timings.total());
                if let Some(profile) = &answer.profile {
                    match explain {
                        ExplainMode::Text => {
                            println!("EXPLAIN ANALYZE:\n{}", profile.render_text())
                        }
                        ExplainMode::Json => println!("{}", profile.to_json()),
                        ExplainMode::Off => {}
                    }
                }
                if chrome_path.is_some() {
                    last_trace = Some(answer.trace);
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }
    if let Some(path) = metrics_path {
        let snapshot = reliable_aqp::obs::MetricsRegistry::global().snapshot();
        match std::fs::write(&path, snapshot.to_jsonl()) {
            Ok(()) => eprintln!("metrics snapshot written to {path}"),
            Err(e) => eprintln!("failed writing metrics snapshot to {path}: {e}"),
        }
    }
    if let Some(path) = flame_path {
        let cum = session.cumulative_profile().expect("contprof is on under --flame");
        match std::fs::write(&path, folded_stacks(&cum)) {
            Ok(()) => eprintln!(
                "folded stacks written to {path} ({} queries, {} paths)",
                cum.queries_observed(),
                cum.paths()
            ),
            Err(e) => eprintln!("failed writing folded stacks to {path}: {e}"),
        }
    }
    if let Some(path) = chrome_path {
        match &last_trace {
            Some(trace) => match std::fs::write(&path, chrome_trace(trace)) {
                Ok(()) => eprintln!("chrome trace written to {path}"),
                Err(e) => eprintln!("failed writing chrome trace to {path}: {e}"),
            },
            None => eprintln!("no query ran; nothing to write to {path}"),
        }
    }
    eprintln!("bye");
}

//! Stratified sampling for rare groups: BlinkDB's "carefully chosen
//! collection of samples" in action.
//!
//! ```bash
//! cargo run --release --example rare_groups
//! ```
//!
//! A uniform sample starves rare cities (few rows → wide or unreliable
//! error bars), while a stratified sample on `city` gives every city the
//! same per-stratum row budget — each stratum scaled by its own rate.
//! The diagnostic machinery runs unchanged on top.

use reliable_aqp::{AqpSession, SessionConfig};
use reliable_aqp::workload::conviva_sessions_table;

fn main() {
    let rows = 1_000_000;
    println!("ingesting {rows} sessions (Zipf city mix: NYC ~27%, tail cities <1%) ...");

    // This example is about interval *width* per group; laptop-scale
    // samples can't support p = 100 disjoint subsamples per rare group,
    // so the diagnostic is disabled here (AVG on these columns is in its
    // well-behaved regime; see `diagnostic_fallback` for the gating demo).
    let config = || SessionConfig { seed: 5, run_diagnostics: false, ..Default::default() };

    // Session A: uniform 4% sample.
    let uniform = AqpSession::new(config());
    uniform.register_table(conviva_sessions_table(rows, 16, 9)).unwrap();
    uniform.build_samples("sessions", &[rows / 25], 3).unwrap();

    // Session B: stratified on city, 2,500 rows per city
    // (same total sample budget, allocated evenly).
    let stratified = AqpSession::new(config());
    stratified.register_table(conviva_sessions_table(rows, 16, 9)).unwrap();
    stratified.build_stratified_sample("sessions", "city", 2_500, 7).unwrap();

    // Ground truth.
    let exact = AqpSession::new(SessionConfig::default());
    exact.register_table(conviva_sessions_table(rows, 16, 9)).unwrap();

    let sql = "SELECT city, AVG(time) FROM sessions GROUP BY city";
    let truth = exact.execute(sql).unwrap();
    let ua = uniform.execute(sql).unwrap();
    let sa = stratified.execute(sql).unwrap();

    println!(
        "\n{:<14} {:>10} {:>22} {:>22}",
        "city", "truth", "uniform (±hw)", "stratified (±hw)"
    );
    for tg in &truth.groups {
        let t = tg.aggs[0].estimate;
        let render = |answer: &reliable_aqp::AqpAnswer| -> String {
            answer
                .groups
                .iter()
                .find(|g| g.key == tg.key)
                .map(|g| {
                    let a = &g.aggs[0];
                    match &a.ci {
                        Some(ci) => format!("{:8.2} ±{:6.2}", a.estimate, ci.half_width),
                        None => format!("{:8.2}  exact", a.estimate),
                    }
                })
                .unwrap_or_else(|| "missing!".to_string())
        };
        println!("{:<14} {:>10.2} {:>22} {:>22}", tg.key, t, render(&ua), render(&sa));
    }

    // Summarize rare-group interval quality: uniform sampling starves the
    // tail cities (few rows -> wide intervals); stratification equalizes.
    let avg_hw = |answer: &reliable_aqp::AqpAnswer| -> (f64, usize) {
        let hws: Vec<f64> = answer
            .groups
            .iter()
            .filter_map(|g| g.aggs[0].ci.as_ref().map(|c| c.half_width))
            .collect();
        let exact_served = answer
            .groups
            .iter()
            .filter(|g| g.aggs[0].ci.is_none())
            .count();
        let mean = if hws.is_empty() { f64::NAN } else { hws.iter().sum::<f64>() / hws.len() as f64 };
        (mean, exact_served)
    };
    let (u_hw, u_exact) = avg_hw(&ua);
    let (s_hw, s_exact) = avg_hw(&sa);
    println!("\nuniform   : mean half-width {u_hw:.2}, {u_exact} groups served exactly (fallback)");
    println!("stratified: mean half-width {s_hw:.2}, {s_exact} groups served exactly (fallback)");
    println!(
        "\nuniform sample rows: {}, stratified sample rows: {}",
        ua.sample_rows, sa.sample_rows
    );
}

//! "Knowing when you're wrong" in action: the same query shape over
//! benign vs. pathological data, showing the diagnostic accepting the
//! first and rejecting the second (triggering exact fallback).
//!
//! ```bash
//! cargo run --release --example diagnostic_fallback
//! ```
//!
//! §3 of the paper shows bootstrap error estimation failing for 86% of
//! MIN/MAX queries on production data — precisely the case the diagnostic
//! exists to catch before a user ever sees the bogus error bars.
//!
//! Pass `--metrics out.jsonl` to dump the metrics snapshot (diagnostic
//! accept/reject counters, fallback rates) as JSONL.

use reliable_aqp::{AnswerMode, AqpSession, SessionConfig};
use reliable_aqp::workload::facebook_events_table;

fn run(session: &AqpSession, sql: &str) {
    println!("\n>>> {sql}");
    let answer = session.execute(sql).expect("execute");
    // The answer carries its own trace-derived timings: no ad-hoc clock.
    let elapsed = answer.timings.total();
    let r = answer.scalar().expect("single result");
    match answer.mode {
        AnswerMode::Approximate | AnswerMode::ApproximateUnchecked => {
            let ci = r.ci.expect("approximate answers carry intervals");
            println!(
                "    APPROVED: {:.4} ± {:.4} via {:?} (diagnostic accepted), {:?}",
                r.estimate,
                ci.half_width,
                r.method,
                elapsed
            );
            if let Some(d) = &r.diagnostic {
                for l in &d.levels {
                    println!(
                        "      level b={:<6} truth hw={:<10.4} mean-dev={:<8.3} spread={:<8.3} close={:.2}",
                        l.b, l.x, l.mean_deviation, l.relative_spread, l.close_proportion
                    );
                }
            }
        }
        AnswerMode::ExactFallback | AnswerMode::PartialFallback => {
            println!(
                "    REJECTED by diagnostic -> exact fallback: {:.4} (no error bars shown), {:?}",
                r.estimate,
                elapsed
            );
        }
        AnswerMode::Exact => println!("    exact: {:.4}", r.estimate),
    }
}

fn main() {
    let rows = 1_000_000;
    println!("ingesting {rows} events (columns span the tail-weight spectrum) ...");
    let session = AqpSession::new(SessionConfig { seed: 13, ..Default::default() });
    session.register_table(facebook_events_table(rows, 16, 5)).expect("register");
    session.build_samples("events", &[rows / 20], 17).expect("samples");

    // Benign: AVG over a bounded column — every technique works; the
    // diagnostic should accept.
    run(&session, "SELECT AVG(dwell_frac) FROM events");

    // Moderate: SUM over a lognormal column — closed form, usually fine.
    run(&session, "SELECT SUM(latency_ms) FROM events WHERE country = 'NYC'");

    // Pathological: MAX over an infinite-variance Pareto column — the
    // bootstrap's error bars are garbage; the diagnostic must catch it.
    run(&session, "SELECT MAX(payload_kb) FROM events");

    // Also pathological: MIN over a continuous unbounded-support column.
    run(&session, "SELECT MIN(payload_kb) FROM events");

    write_metrics_if_requested();
}

/// Honour a `--metrics <path>` flag with a JSONL metrics snapshot.
fn write_metrics_if_requested() {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1).cloned())
    else {
        return;
    };
    let snapshot = reliable_aqp::obs::MetricsRegistry::global().snapshot();
    match std::fs::write(&path, snapshot.to_jsonl()) {
        Ok(()) => println!("metrics snapshot written to {path}"),
        Err(e) => eprintln!("failed writing metrics snapshot to {path}: {e}"),
    }
}

//! # reliable-aqp
//!
//! A from-scratch Rust implementation of
//! *Knowing When You're Wrong: Building Fast and Reliable Approximate
//! Query Processing Systems* (Agarwal et al., SIGMOD 2014).
//!
//! Sampling answers analytical queries orders of magnitude faster than
//! scanning the data — *if* the error bars attached to the answers can be
//! trusted. This crate family implements the paper's full pipeline:
//!
//! * approximate answers from stored uniform samples,
//! * error bars via closed-form CLT estimates, the Poissonized
//!   nonparametric bootstrap, or (as a conservative baseline)
//!   large-deviation bounds,
//! * the Kleiner-et-al. **diagnostic** that detects, at query time,
//!   whether those error bars are reliable, and
//! * automatic fallback to exact execution when they are not.
//!
//! The facade re-exports every subsystem crate; start with
//! [`AqpSession`].
//!
//! ```
//! use reliable_aqp::{AqpSession, SessionConfig};
//! use reliable_aqp::workload::conviva_sessions_table;
//!
//! let session = AqpSession::new(SessionConfig::default());
//! session.register_table(conviva_sessions_table(50_000, 8, 1)).unwrap();
//! session.build_samples("sessions", &[10_000], 7).unwrap();
//! let answer = session.execute("SELECT AVG(time) FROM sessions").unwrap();
//! println!("{}", answer.summary());
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub use aqp_core::answer::AnswerMode;
pub use aqp_core::{
    AqpAnswer, AqpSession, ContProfConfig, CumulativeProfile, ExplainMode, IntrospectConfig,
    OpProfile, SessionConfig,
};

/// Observability: clock abstraction, metrics registry, query traces.
pub use aqp_obs as obs;

/// Fleet-level SLOs: burn-rate alerts, error budgets, drift detection.
pub use aqp_slo as slo;

/// Deterministic fault injection and recovery (`crates/faults`).
pub use aqp_faults as faults;
/// Operator-level EXPLAIN ANALYZE profiles assembled from query traces.
pub use aqp_prof as prof;
/// Continuous error-bar coverage auditing and diagnostic scorekeeping.
pub use aqp_audit as audit;
/// Self-hosted telemetry analytics: query the system's own telemetry
/// through the AQP engine (`_telemetry.*` tables, with error bars).
pub use aqp_introspect as introspect;
/// Columnar storage substrate.
pub use aqp_storage as storage;
/// Statistical substrate (bootstrap, closed forms, large deviations).
pub use aqp_stats as stats;
/// The error-estimation diagnostic (Kleiner et al., Algorithm 1).
pub use aqp_diagnostics as diagnostics;
/// SQL front end + plan rewriter.
pub use aqp_sql as sql;
/// Physical execution.
pub use aqp_exec as exec;
/// Cluster simulator for the Fig. 7–9 experiments.
pub use aqp_cluster as cluster;
/// Synthetic Facebook/Conviva-calibrated workloads.
pub use aqp_workload as workload;
